"""Memory footprint accounting: exhaustive codebook vs. factorization.

Fig. 8 of the paper reports that replacing the materialised symbolic
knowledge codebook with the iterative factorizer shrinks the codebook
storage from 13,560 KB to 190 KB (71.4x) for the NVSA workload.  The
functions here compute both sides of that comparison from first principles
(number of factors, codevectors per factor, vector dimension, precision) so
the same accounting applies to any workload configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantization import Precision
from repro.errors import FactorizationError
from repro.vsa.codebook import CodebookSet

__all__ = ["FootprintReport", "codebook_footprint", "factorizer_footprint", "compare_footprints"]


@dataclass(frozen=True)
class FootprintReport:
    """Byte-level comparison between the two symbolic storage strategies."""

    product_codebook_bytes: int
    factorized_bytes: int
    precision: Precision

    @property
    def reduction_factor(self) -> float:
        """How many times smaller the factorized representation is."""
        if self.factorized_bytes == 0:
            raise FactorizationError("factorized footprint is zero; nothing to compare")
        return self.product_codebook_bytes / self.factorized_bytes

    @property
    def product_codebook_kib(self) -> float:
        """Product codebook footprint in KiB."""
        return self.product_codebook_bytes / 1024.0

    @property
    def factorized_kib(self) -> float:
        """Factorized footprint in KiB."""
        return self.factorized_bytes / 1024.0


def codebook_footprint(
    factor_sizes: list[int], dim: int, precision: Precision | str = Precision.FP32
) -> int:
    """Bytes needed to materialise the full product codebook."""
    precision = Precision.parse(precision)
    if dim <= 0:
        raise FactorizationError(f"dim must be positive, got {dim}")
    if not factor_sizes or any(size <= 0 for size in factor_sizes):
        raise FactorizationError(f"factor sizes must be positive, got {factor_sizes}")
    combinations = 1
    for size in factor_sizes:
        combinations *= size
    return combinations * dim * precision.bytes_per_element


def factorizer_footprint(
    factor_sizes: list[int], dim: int, precision: Precision | str = Precision.FP32
) -> int:
    """Bytes needed by the factorized representation (per-factor codebooks).

    The factorizer additionally keeps one estimate and one unbound vector per
    factor plus the query during iteration; that transient state is included
    since it is what the accelerator must actually buffer.
    """
    precision = Precision.parse(precision)
    if dim <= 0:
        raise FactorizationError(f"dim must be positive, got {dim}")
    if not factor_sizes or any(size <= 0 for size in factor_sizes):
        raise FactorizationError(f"factor sizes must be positive, got {factor_sizes}")
    codebooks = sum(factor_sizes) * dim
    working_state = (2 * len(factor_sizes) + 1) * dim
    return (codebooks + working_state) * precision.bytes_per_element


def compare_footprints(
    factor_sizes: list[int], dim: int, precision: Precision | str = Precision.FP32
) -> FootprintReport:
    """Build a :class:`FootprintReport` for the given symbolic configuration."""
    precision = Precision.parse(precision)
    return FootprintReport(
        product_codebook_bytes=codebook_footprint(factor_sizes, dim, precision),
        factorized_bytes=factorizer_footprint(factor_sizes, dim, precision),
        precision=precision,
    )


def codebook_set_footprint(
    codebooks: CodebookSet, precision: Precision | str = Precision.FP32
) -> FootprintReport:
    """Footprint comparison for an actual :class:`CodebookSet` instance."""
    return compare_footprints(
        factor_sizes=codebooks.factor_sizes,
        dim=codebooks.dim,
        precision=precision,
    )
