"""Probability mass functions over symbolic attribute values.

The neural front-end reports its belief about every panel attribute as a PMF
over the attribute's discrete value domain; the abduction engine reasons
directly in this probability space (that is what makes the pipeline
"probabilistic abduction" rather than hard symbolic matching).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TaskGenerationError

__all__ = ["AttributePMF"]


@dataclass(frozen=True)
class AttributePMF:
    """A normalised distribution over the values of one attribute."""

    name: str
    values: tuple[str, ...]
    probabilities: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        probabilities = np.asarray(self.probabilities, dtype=np.float64)
        if len(self.values) == 0:
            raise TaskGenerationError(f"attribute '{self.name}' has no values")
        if probabilities.shape != (len(self.values),):
            raise TaskGenerationError(
                f"attribute '{self.name}' has {len(self.values)} values but "
                f"probabilities of shape {probabilities.shape}"
            )
        if np.any(probabilities < -1e-12):
            raise TaskGenerationError(f"attribute '{self.name}' has negative probabilities")
        total = probabilities.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise TaskGenerationError(
                f"attribute '{self.name}' probabilities sum to {total}, expected 1"
            )
        object.__setattr__(self, "probabilities", np.clip(probabilities, 0.0, None))

    # -- constructors -----------------------------------------------------------
    @classmethod
    def delta(cls, name: str, values: Sequence[str], value: str) -> "AttributePMF":
        """A PMF with all mass on ``value``."""
        values = tuple(values)
        if value not in values:
            raise TaskGenerationError(f"value '{value}' not in domain of '{name}'")
        probabilities = np.zeros(len(values))
        probabilities[values.index(value)] = 1.0
        return cls(name=name, values=values, probabilities=probabilities)

    @classmethod
    def uniform(cls, name: str, values: Sequence[str]) -> "AttributePMF":
        """A PMF with equal mass on every value."""
        values = tuple(values)
        if not values:
            raise TaskGenerationError(f"attribute '{name}' has no values")
        return cls(
            name=name,
            values=values,
            probabilities=np.full(len(values), 1.0 / len(values)),
        )

    @classmethod
    def from_index_distribution(
        cls, name: str, values: Sequence[str], distribution: np.ndarray
    ) -> "AttributePMF":
        """Build a PMF from an un-normalised weight vector over indices."""
        distribution = np.asarray(distribution, dtype=np.float64)
        total = distribution.sum()
        if total <= 0:
            raise TaskGenerationError(
                f"cannot normalise an all-zero distribution for '{name}'"
            )
        return cls(name=name, values=tuple(values), probabilities=distribution / total)

    # -- queries ----------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of values in the domain."""
        return len(self.values)

    def probability_of(self, value: str) -> float:
        """Probability assigned to ``value``."""
        if value not in self.values:
            raise TaskGenerationError(f"value '{value}' not in domain of '{self.name}'")
        return float(self.probabilities[self.values.index(value)])

    @property
    def most_likely(self) -> str:
        """The value with the highest probability."""
        return self.values[int(np.argmax(self.probabilities))]

    @property
    def most_likely_index(self) -> int:
        """Index of the most likely value."""
        return int(np.argmax(self.probabilities))

    @property
    def entropy(self) -> float:
        """Shannon entropy in bits."""
        probabilities = self.probabilities[self.probabilities > 0]
        return float(-(probabilities * np.log2(probabilities)).sum())

    @property
    def is_delta(self) -> bool:
        """True when all mass sits on one value."""
        return bool(np.isclose(self.probabilities.max(), 1.0))

    # -- algebra ------------------------------------------------------------------
    def dot(self, other: "AttributePMF") -> float:
        """Bhattacharyya-style agreement between two PMFs on the same domain."""
        self._check_same_domain(other)
        return float(np.dot(self.probabilities, other.probabilities))

    def mix(self, other: "AttributePMF", weight: float = 0.5) -> "AttributePMF":
        """Convex combination of two PMFs on the same domain."""
        self._check_same_domain(other)
        if not 0.0 <= weight <= 1.0:
            raise TaskGenerationError(f"weight must be in [0, 1], got {weight}")
        mixed = weight * self.probabilities + (1.0 - weight) * other.probabilities
        return AttributePMF(name=self.name, values=self.values, probabilities=mixed)

    def _check_same_domain(self, other: "AttributePMF") -> None:
        if self.values != other.values:
            raise TaskGenerationError(
                f"PMFs over different domains: {self.values} vs {other.values}"
            )
