"""Probabilistic abduction and execution over RPM-style tasks.

This is the reasoning backbone shared by the NVSA, LVRF and PrAE workloads:
given the perception front-end's PMFs for the eight context panels of a 3x3
matrix, the engine (1) infers a posterior over the rule governing each
attribute, (2) *executes* the most plausible rules to predict a PMF for the
missing ninth panel, and (3) scores each candidate answer against that
prediction.  All reasoning happens in probability space, so imperfect
perception degrades confidence gracefully instead of breaking the pipeline.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import TaskGenerationError
from repro.symbolic.attributes import AttributePMF
from repro.symbolic.rules import Rule, default_rule_library

__all__ = ["RulePosterior", "AbductionResult", "ProbabilisticAbductionEngine"]

#: a panel is a mapping from attribute name to its PMF
Panel = Mapping[str, AttributePMF]


@dataclass(frozen=True)
class RulePosterior:
    """Posterior distribution over rules for one attribute."""

    attribute: str
    rule_names: tuple[str, ...]
    probabilities: np.ndarray

    @property
    def most_likely(self) -> str:
        """Name of the maximum-a-posteriori rule."""
        return self.rule_names[int(np.argmax(self.probabilities))]

    def probability_of(self, rule_name: str) -> float:
        """Posterior probability of a specific rule."""
        if rule_name not in self.rule_names:
            raise TaskGenerationError(
                f"rule '{rule_name}' not in posterior for '{self.attribute}'"
            )
        return float(self.probabilities[self.rule_names.index(rule_name)])


@dataclass(frozen=True)
class AbductionResult:
    """Outcome of solving one RPM task."""

    answer_index: int
    answer_scores: np.ndarray
    rule_posteriors: dict[str, RulePosterior]
    predicted_panel: dict[str, AttributePMF]

    @property
    def confidence(self) -> float:
        """Normalised margin of the selected answer over the runner-up."""
        scores = np.sort(self.answer_scores)[::-1]
        if len(scores) < 2 or scores[0] == 0:
            return 1.0
        return float((scores[0] - scores[1]) / scores[0])


class ProbabilisticAbductionEngine:
    """Infer rules from context panels and execute them to pick an answer."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules = list(rules) if rules is not None else default_rule_library()
        if not self.rules:
            raise TaskGenerationError("the abduction engine needs at least one rule")

    # -- public API ------------------------------------------------------------
    def solve(
        self, context: Sequence[Panel], candidates: Sequence[Panel]
    ) -> AbductionResult:
        """Solve a 3x3 RPM task given 8 context panels and candidate answers."""
        if len(context) != 8:
            raise TaskGenerationError(
                f"expected 8 context panels (3x3 grid minus the answer), got {len(context)}"
            )
        if not candidates:
            raise TaskGenerationError("at least one candidate answer is required")
        attributes = self._shared_attributes(context, candidates)

        rule_posteriors: dict[str, RulePosterior] = {}
        predicted_panel: dict[str, AttributePMF] = {}
        for attribute in attributes:
            posterior = self.infer_rule_posterior(context, attribute)
            rule_posteriors[attribute] = posterior
            predicted_panel[attribute] = self.predict_missing(context, attribute, posterior)

        scores = np.array(
            [self._score_candidate(candidate, predicted_panel) for candidate in candidates]
        )
        return AbductionResult(
            answer_index=int(np.argmax(scores)),
            answer_scores=scores,
            rule_posteriors=rule_posteriors,
            predicted_panel=predicted_panel,
        )

    def infer_rule_posterior(
        self, context: Sequence[Panel], attribute: str
    ) -> RulePosterior:
        """Posterior over rules for ``attribute`` from the two complete rows."""
        rows = self._complete_rows(context, attribute)
        map_rows = [tuple(pmf.most_likely_index for pmf in row) for row in rows]
        domain_size = rows[0][0].size

        likelihoods = np.zeros(len(self.rules))
        for index, rule in enumerate(self.rules):
            likelihood = 1.0
            for row in rows:
                likelihood *= self._row_likelihood(rule, row, domain_size, map_rows)
            likelihoods[index] = likelihood

        total = likelihoods.sum()
        if total <= 0:
            probabilities = np.full(len(self.rules), 1.0 / len(self.rules))
        else:
            probabilities = likelihoods / total
        return RulePosterior(
            attribute=attribute,
            rule_names=tuple(rule.name for rule in self.rules),
            probabilities=probabilities,
        )

    def predict_missing(
        self,
        context: Sequence[Panel],
        attribute: str,
        posterior: RulePosterior | None = None,
    ) -> AttributePMF:
        """Execute the rule posterior to predict the missing panel's PMF."""
        posterior = posterior or self.infer_rule_posterior(context, attribute)
        rows = self._complete_rows(context, attribute)
        map_rows = [tuple(pmf.most_likely_index for pmf in row) for row in rows]
        first_pmf = context[6][attribute]
        second_pmf = context[7][attribute]
        values = first_pmf.values
        domain_size = len(values)

        prediction = np.zeros(domain_size)
        for rule, rule_probability in zip(self.rules, posterior.probabilities):
            if rule_probability <= 0:
                continue
            for first in range(domain_size):
                p_first = first_pmf.probabilities[first]
                if p_first <= 0:
                    continue
                for second in range(domain_size):
                    p_second = second_pmf.probabilities[second]
                    if p_second <= 0:
                        continue
                    third = rule.predict(first, second, domain_size, observed_rows=map_rows)
                    if third is None:
                        continue
                    prediction[third] += rule_probability * p_first * p_second

        if prediction.sum() <= 0:
            return AttributePMF.uniform(attribute, values)
        return AttributePMF.from_index_distribution(attribute, values, prediction)

    # -- internals -----------------------------------------------------------------
    @staticmethod
    def _shared_attributes(
        context: Sequence[Panel], candidates: Sequence[Panel]
    ) -> list[str]:
        attributes = list(context[0].keys())
        for panel in list(context) + list(candidates):
            if set(panel.keys()) != set(attributes):
                raise TaskGenerationError(
                    "all panels must describe the same attribute set; "
                    f"expected {sorted(attributes)}, got {sorted(panel.keys())}"
                )
        return attributes

    @staticmethod
    def _complete_rows(
        context: Sequence[Panel], attribute: str
    ) -> list[tuple[AttributePMF, AttributePMF, AttributePMF]]:
        return [
            (context[0][attribute], context[1][attribute], context[2][attribute]),
            (context[3][attribute], context[4][attribute], context[5][attribute]),
        ]

    @staticmethod
    def _row_likelihood(
        rule: Rule,
        row: tuple[AttributePMF, AttributePMF, AttributePMF],
        domain_size: int,
        map_rows: list[tuple[int, int, int]],
    ) -> float:
        """Probability that a complete row was generated by ``rule``."""
        first_pmf, second_pmf, third_pmf = row
        likelihood = 0.0
        for first in range(domain_size):
            p_first = first_pmf.probabilities[first]
            if p_first <= 0:
                continue
            for second in range(domain_size):
                p_second = second_pmf.probabilities[second]
                if p_second <= 0:
                    continue
                third = rule.predict(first, second, domain_size, observed_rows=map_rows)
                if third is None:
                    continue
                likelihood += p_first * p_second * third_pmf.probabilities[third]
        return likelihood

    def _score_candidate(
        self, candidate: Panel, predicted_panel: Mapping[str, AttributePMF]
    ) -> float:
        """Joint agreement between a candidate panel and the prediction."""
        score = 1.0
        for attribute, predicted in predicted_panel.items():
            score *= predicted.dot(candidate[attribute])
        return score
