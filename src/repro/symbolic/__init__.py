"""Symbolic reasoning substrate: attribute PMFs, RPM rules, abduction.

This subpackage implements the "system 2" half of the neurosymbolic
pipeline: probability mass functions over symbolic attribute values
(:mod:`repro.symbolic.attributes`), the Raven's-Progressive-Matrices rule
library (:mod:`repro.symbolic.rules`), and the probabilistic abduction and
execution engine (:mod:`repro.symbolic.abduction`) that infers which rule
governs each attribute and predicts the missing panel.
"""

from repro.symbolic.attributes import AttributePMF
from repro.symbolic.rules import (
    ArithmeticRule,
    ConstantRule,
    DistributeThreeRule,
    LogicalRule,
    ProgressionRule,
    Rule,
    default_rule_library,
    logical_rule_library,
)
from repro.symbolic.abduction import (
    AbductionResult,
    ProbabilisticAbductionEngine,
    RulePosterior,
)

__all__ = [
    "AttributePMF",
    "Rule",
    "ConstantRule",
    "ProgressionRule",
    "ArithmeticRule",
    "DistributeThreeRule",
    "LogicalRule",
    "default_rule_library",
    "logical_rule_library",
    "ProbabilisticAbductionEngine",
    "AbductionResult",
    "RulePosterior",
]
