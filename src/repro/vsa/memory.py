"""Cleanup (associative item) memory.

A cleanup memory maps noisy hypervectors back to the nearest stored
prototype.  The symbolic reasoning pipelines use it to recover discrete
attribute values and rule identities from bundled or unbound vectors.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import CodebookError
from repro.vsa.spaces import VSASpace

__all__ = ["CleanupMemory"]


class CleanupMemory:
    """Associative memory of labelled hypervectors."""

    def __init__(self, space: VSASpace) -> None:
        self.space = space
        self._labels: list[str] = []
        self._vectors: list[np.ndarray] = []

    @classmethod
    def from_items(cls, space: VSASpace, items: Mapping[str, np.ndarray]) -> "CleanupMemory":
        """Build a memory from ``{label: vector}``."""
        memory = cls(space)
        for label, vector in items.items():
            memory.store(label, vector)
        return memory

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: str) -> bool:
        return label in self._labels

    @property
    def labels(self) -> list[str]:
        """Stored labels in insertion order."""
        return list(self._labels)

    def store(self, label: str, vector: np.ndarray) -> None:
        """Add (or overwrite) an item."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.space.dim,):
            raise CodebookError(
                f"vector for '{label}' has shape {vector.shape}, "
                f"expected ({self.space.dim},)"
            )
        if label in self._labels:
            self._vectors[self._labels.index(label)] = vector
        else:
            self._labels.append(label)
            self._vectors.append(vector)

    def vector(self, label: str) -> np.ndarray:
        """Return the stored vector for ``label``."""
        try:
            return self._vectors[self._labels.index(label)]
        except ValueError as exc:
            raise CodebookError(f"no item stored for label '{label}'") from exc

    def recall(self, query: np.ndarray, top_k: int = 1) -> list[tuple[str, float]]:
        """Return the ``top_k`` most similar stored items as (label, similarity)."""
        if not self._labels:
            raise CodebookError("cleanup memory is empty")
        if top_k <= 0:
            raise CodebookError(f"top_k must be positive, got {top_k}")
        matrix = np.stack(self._vectors)
        sims = self.space.similarity_matrix(np.asarray(query)[np.newaxis, :], matrix)[0]
        order = np.argsort(sims)[::-1][:top_k]
        return [(self._labels[i], float(sims[i])) for i in order]

    def cleanup(self, query: np.ndarray) -> tuple[str, float]:
        """Return the single best-matching stored item."""
        return self.recall(query, top_k=1)[0]
