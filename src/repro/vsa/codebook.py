"""Symbolic knowledge codebooks.

A codebook stores one hypervector per discrete value of an attribute (a
"factor" in the paper's terminology, e.g. object type, size, color, number,
position).  The set of codebooks for a task is a :class:`CodebookSet`;
binding one codevector from each factor produces the entangled product
vector that describes a concrete object.  The combinatorially large table of
all such products is the :class:`ProductCodebook` — the structure whose
tens-to-hundreds-of-megabyte footprint motivates the paper's factorization
strategy (Sec. III-C, Fig. 8).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from itertools import product as iter_product

import numpy as np

from repro.errors import CodebookError, DimensionMismatchError
from repro.vsa.spaces import VSASpace

__all__ = ["Codebook", "CodebookSet", "ProductCodebook"]

#: default storage width used for footprint accounting (FP32)
DEFAULT_ELEMENT_BYTES = 4


class Codebook:
    """A named table of codevectors, one per symbolic value.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"color"``.
    labels:
        Symbolic values in a fixed order, e.g. ``["red", "blue"]``.
    space:
        The hypervector space the codevectors live in.
    vectors:
        Optional pre-built ``(len(labels), dim)`` matrix.  If omitted, random
        quasi-orthogonal codevectors are drawn from ``space``.
    """

    def __init__(
        self,
        name: str,
        labels: Sequence[str],
        space: VSASpace,
        vectors: np.ndarray | None = None,
    ) -> None:
        labels = list(labels)
        if not labels:
            raise CodebookError(f"codebook '{name}' needs at least one label")
        if len(set(labels)) != len(labels):
            raise CodebookError(f"codebook '{name}' has duplicate labels")
        self.name = name
        self.labels = labels
        self.space = space
        if vectors is None:
            vectors = space.random_vectors(len(labels))
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape != (len(labels), space.dim):
            raise DimensionMismatchError(
                f"codebook '{name}' vectors must have shape "
                f"({len(labels)}, {space.dim}), got {vectors.shape}"
            )
        self.vectors = vectors
        self._index = {label: i for i, label in enumerate(labels)}

    # -- basic container behaviour ------------------------------------------
    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self._index

    @property
    def dim(self) -> int:
        """Hypervector dimensionality."""
        return self.space.dim

    def index_of(self, label: str) -> int:
        """Return the row index of ``label``."""
        try:
            return self._index[label]
        except KeyError as exc:
            raise CodebookError(
                f"label '{label}' not in codebook '{self.name}'"
            ) from exc

    def vector(self, label_or_index: str | int) -> np.ndarray:
        """Return the codevector for a label or integer index."""
        if isinstance(label_or_index, str):
            idx = self.index_of(label_or_index)
        else:
            idx = int(label_or_index)
            if not 0 <= idx < len(self.labels):
                raise CodebookError(
                    f"index {idx} out of range for codebook '{self.name}'"
                )
        return self.vectors[idx]

    # -- search ---------------------------------------------------------------
    def similarities(self, query: np.ndarray) -> np.ndarray:
        """Similarity of ``query`` against every codevector."""
        return self.space.similarity_matrix(query[np.newaxis, :], self.vectors)[0]

    def cleanup(self, query: np.ndarray) -> tuple[str, float]:
        """Return the best-matching label and its similarity."""
        sims = self.similarities(query)
        best = int(np.argmax(sims))
        return self.labels[best], float(sims[best])

    # -- footprint --------------------------------------------------------------
    def nbytes(self, element_bytes: int = DEFAULT_ELEMENT_BYTES) -> int:
        """Storage footprint of the codebook matrix in bytes."""
        return len(self.labels) * self.dim * element_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Codebook(name={self.name!r}, size={len(self)}, dim={self.dim})"


class CodebookSet:
    """An ordered collection of factor codebooks sharing one space."""

    def __init__(self, codebooks: Sequence[Codebook]) -> None:
        if not codebooks:
            raise CodebookError("a CodebookSet needs at least one codebook")
        dims = {cb.dim for cb in codebooks}
        if len(dims) != 1:
            raise DimensionMismatchError(
                f"codebooks have inconsistent dimensions: {sorted(dims)}"
            )
        names = [cb.name for cb in codebooks]
        if len(set(names)) != len(names):
            raise CodebookError("codebooks must have unique names")
        self.codebooks = list(codebooks)
        self.space = codebooks[0].space
        self._by_name = {cb.name: cb for cb in codebooks}

    @classmethod
    def from_factors(
        cls, factors: Mapping[str, Sequence[str]], space: VSASpace
    ) -> "CodebookSet":
        """Build a set of random codebooks from ``{factor: labels}``."""
        return cls([Codebook(name, labels, space) for name, labels in factors.items()])

    # -- container behaviour ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.codebooks)

    def __iter__(self):
        return iter(self.codebooks)

    def __getitem__(self, name_or_index: str | int) -> Codebook:
        if isinstance(name_or_index, str):
            try:
                return self._by_name[name_or_index]
            except KeyError as exc:
                raise CodebookError(f"no codebook named '{name_or_index}'") from exc
        return self.codebooks[name_or_index]

    @property
    def factor_names(self) -> list[str]:
        """Factor names in order."""
        return [cb.name for cb in self.codebooks]

    @property
    def factor_sizes(self) -> list[int]:
        """Number of codevectors per factor."""
        return [len(cb) for cb in self.codebooks]

    @property
    def dim(self) -> int:
        """Hypervector dimensionality."""
        return self.space.dim

    @property
    def num_combinations(self) -> int:
        """Size of the combinatorial product space ``M_1 * ... * M_F``."""
        total = 1
        for cb in self.codebooks:
            total *= len(cb)
        return total

    # -- encoding ----------------------------------------------------------------
    def bind_combination(self, assignment: Mapping[str, str] | Sequence[str]) -> np.ndarray:
        """Bind one codevector per factor into a product hypervector.

        ``assignment`` is either a mapping ``{factor: label}`` covering every
        factor or a sequence of labels in factor order.
        """
        labels = self._normalize_assignment(assignment)
        vectors = [cb.vector(label) for cb, label in zip(self.codebooks, labels)]
        return self.space.bind_all(np.stack(vectors))

    def _normalize_assignment(
        self, assignment: Mapping[str, str] | Sequence[str]
    ) -> list[str]:
        if isinstance(assignment, Mapping):
            missing = [name for name in self.factor_names if name not in assignment]
            if missing:
                raise CodebookError(f"assignment missing factors: {missing}")
            return [assignment[name] for name in self.factor_names]
        labels = list(assignment)
        if len(labels) != len(self.codebooks):
            raise CodebookError(
                f"assignment has {len(labels)} labels for {len(self.codebooks)} factors"
            )
        return labels

    # -- footprint -----------------------------------------------------------------
    def nbytes(self, element_bytes: int = DEFAULT_ELEMENT_BYTES) -> int:
        """Total storage of the per-factor codebooks (the factorized form)."""
        return sum(cb.nbytes(element_bytes) for cb in self.codebooks)

    def product_nbytes(self, element_bytes: int = DEFAULT_ELEMENT_BYTES) -> int:
        """Storage the exhaustive product codebook would require."""
        return self.num_combinations * self.dim * element_bytes


@dataclass(frozen=True)
class _ProductEntry:
    """One row of a materialised product codebook."""

    labels: tuple[str, ...]
    index: int


class ProductCodebook:
    """The exhaustively materialised combination codebook.

    This is the baseline the paper's factorizer replaces.  Materialising it
    is only feasible for small factor spaces, so construction is guarded by
    ``max_combinations``; the footprint accounting in
    :meth:`CodebookSet.product_nbytes` covers the large cases analytically.
    """

    def __init__(self, codebook_set: CodebookSet, max_combinations: int = 200_000) -> None:
        total = codebook_set.num_combinations
        if total > max_combinations:
            raise CodebookError(
                f"refusing to materialise {total} combinations "
                f"(limit {max_combinations}); use the factorizer instead"
            )
        self.codebook_set = codebook_set
        self.space = codebook_set.space
        label_lists = [cb.labels for cb in codebook_set.codebooks]
        self.entries: list[_ProductEntry] = []
        vectors = np.empty((total, codebook_set.dim))
        for idx, combo in enumerate(iter_product(*label_lists)):
            vectors[idx] = codebook_set.bind_combination(list(combo))
            self.entries.append(_ProductEntry(labels=tuple(combo), index=idx))
        self.vectors = vectors

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, query: np.ndarray) -> tuple[tuple[str, ...], float]:
        """Exhaustively search for the best-matching combination."""
        sims = self.space.similarity_matrix(query[np.newaxis, :], self.vectors)[0]
        best = int(np.argmax(sims))
        return self.entries[best].labels, float(sims[best])

    def nbytes(self, element_bytes: int = DEFAULT_ELEMENT_BYTES) -> int:
        """Storage footprint of the materialised product table."""
        return len(self.entries) * self.codebook_set.dim * element_bytes
