"""Elementary vector-symbolic operations.

The operations here are the computational kernels that dominate symbolic
runtime in the paper's characterization (Fig. 6): circular convolution
(binding), circular correlation (unbinding), similarity search, and the
supporting element-wise operations.  Every function operates on plain numpy
arrays so the same kernels can be reused by the workload models and by the
hardware simulator's functional checks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = [
    "circular_convolve",
    "circular_convolve_direct",
    "circular_correlate",
    "circular_correlate_direct",
    "cosine_similarity",
    "dot_similarity",
    "normalize_vector",
    "permute",
    "random_bipolar",
    "random_unitary",
    "circconv_flops",
    "circconv_bytes_gemv",
    "circconv_bytes_streaming",
]


def _as_1d(vector: np.ndarray, name: str) -> np.ndarray:
    """Return ``vector`` as a float 1-D array, validating its shape."""
    array = np.asarray(vector, dtype=np.float64)
    if array.ndim != 1:
        raise DimensionMismatchError(
            f"{name} must be a 1-D vector, got shape {array.shape}"
        )
    return array


def _check_same_dim(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise DimensionMismatchError(
            f"operands have mismatched dimensions {a.shape[-1]} and {b.shape[-1]}"
        )


def circular_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two hypervectors with circular convolution.

    Computes ``c[n] = sum_k a[k] * b[(n - k) mod N]`` using the FFT, which is
    the functional reference for the bubble-streaming hardware dataflow.
    """
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    _check_same_dim(a, b)
    return np.real(np.fft.ifft(np.fft.fft(a) * np.fft.fft(b)))


def circular_convolve_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two hypervectors with the O(d^2) direct-sum definition.

    This is the exact arithmetic performed by the nsPE array in circular
    convolution mode and is used to cross-check both the FFT implementation
    and the hardware simulator's functional model.
    """
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    _check_same_dim(a, b)
    dim = a.shape[0]
    # One fancy-index builds the full circulant of b, so the O(d^2) sum is a
    # single matrix-vector product instead of a Python-level loop:
    # circulant[n, k] = b[(n - k) mod d], result = circulant @ a.
    offsets = np.arange(dim)
    circulant = b[(offsets[:, None] - offsets[None, :]) % dim]
    return circulant @ a


def circular_correlate(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Unbind ``a`` from ``c`` with circular correlation.

    Circular correlation is the approximate inverse of circular convolution:
    if ``c = a (*) b`` then ``circular_correlate(c, a)`` is approximately
    ``b`` for quasi-orthogonal hypervectors.
    """
    c = _as_1d(c, "c")
    a = _as_1d(a, "a")
    _check_same_dim(c, a)
    return np.real(np.fft.ifft(np.fft.fft(c) * np.conj(np.fft.fft(a))))


def circular_correlate_direct(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Unbind with the O(d^2) direct definition (involution + convolution)."""
    c = _as_1d(c, "c")
    a = _as_1d(a, "a")
    _check_same_dim(c, a)
    dim = a.shape[0]
    involution = a[(-np.arange(dim)) % dim]
    return circular_convolve_direct(involution, c)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two hypervectors."""
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    _check_same_dim(a, b)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)


def dot_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Raw inner-product similarity between two hypervectors."""
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    _check_same_dim(a, b)
    return float(np.dot(a, b))


def normalize_vector(vector: np.ndarray) -> np.ndarray:
    """Return the unit-norm version of ``vector`` (zero vectors unchanged)."""
    vector = _as_1d(vector, "vector")
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        return vector.copy()
    return vector / norm


def permute(vector: np.ndarray, shift: int = 1) -> np.ndarray:
    """Cyclically permute a hypervector (used to protect sequence order)."""
    vector = _as_1d(vector, "vector")
    return np.roll(vector, shift)


def random_bipolar(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample a random dense bipolar (+1/-1) hypervector."""
    rng = rng or np.random.default_rng()
    return rng.choice(np.array([-1.0, 1.0]), size=dim)


def random_unitary(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample a random unitary hypervector for HRR circular-convolution VSAs.

    A unitary vector has unit-magnitude Fourier coefficients, which makes
    circular convolution exactly invertible by circular correlation.  These
    are the codevectors the paper's factorizer assumes (quasi-orthogonal and
    cleanly unbindable).
    """
    rng = rng or np.random.default_rng()
    half = dim // 2
    # Drawing ``dim`` phases keeps the RNG stream identical to the historical
    # full-spectrum implementation even though only the first half+1 bins are
    # free; ``irfft`` supplies the conjugate-symmetric half implicitly.
    phases = rng.uniform(-np.pi, np.pi, size=dim)
    spectrum = np.exp(1j * phases[: half + 1])
    spectrum[0] = 1.0
    if dim % 2 == 0:
        # The Nyquist bin must be real for a real-valued inverse transform.
        spectrum[half] = np.sign(np.cos(phases[half])) or 1.0
    vector = np.fft.irfft(spectrum, n=dim)
    return vector * np.sqrt(dim)


def circconv_flops(dim: int) -> int:
    """Multiply-accumulate FLOPs of one direct circular convolution."""
    return 2 * dim * dim - dim


def circconv_bytes_gemv(dim: int, element_bytes: int = 4) -> int:
    """Bytes touched when circular convolution is lowered to a GEMV.

    A TPU-like systolic cell materialises the d x d circulant matrix, so the
    traffic is ``d*d`` matrix elements plus the input and output vectors.
    This is the O(d^2) footprint called out in Tab. IV of the paper.
    """
    return element_bytes * (dim * dim + 2 * dim)


def circconv_bytes_streaming(dim: int, element_bytes: int = 4) -> int:
    """Bytes touched by the bubble-streaming dataflow (O(d) footprint)."""
    return element_bytes * (3 * dim)
