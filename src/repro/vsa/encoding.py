"""Scene encoding: from structured attribute descriptions to query vectors.

The neural front-end of an NVSA-style system emits, for each panel of a
reasoning task, a *query hypervector* that entangles the attributes of the
objects in the scene.  The :class:`SceneEncoder` reproduces that interface:
it binds one codevector per attribute into a product vector for a single
object and bundles multiple objects into a scene vector.  Downstream, the
factorizer (``repro.core``) decomposes these query vectors back into their
constituent attributes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CodebookError
from repro.vsa.codebook import CodebookSet

__all__ = ["SceneDescription", "SceneEncoder"]


@dataclass(frozen=True)
class SceneDescription:
    """A symbolic description of a scene as a list of attribute assignments.

    Each object is a mapping from factor name to label, e.g.
    ``{"type": "triangle", "color": "red", "size": "small"}``.
    """

    objects: tuple[Mapping[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def single(cls, **attributes: str) -> "SceneDescription":
        """Convenience constructor for a one-object scene."""
        return cls(objects=(dict(attributes),))

    @property
    def num_objects(self) -> int:
        """Number of objects in the scene."""
        return len(self.objects)


class SceneEncoder:
    """Encode symbolic scene descriptions into query hypervectors."""

    def __init__(self, codebooks: CodebookSet) -> None:
        self.codebooks = codebooks
        self.space = codebooks.space

    @property
    def dim(self) -> int:
        """Dimensionality of produced query vectors."""
        return self.codebooks.dim

    def encode_object(self, attributes: Mapping[str, str]) -> np.ndarray:
        """Bind the attribute codevectors of one object into a product vector."""
        return self.codebooks.bind_combination(attributes)

    def encode_scene(self, scene: SceneDescription | Sequence[Mapping[str, str]]) -> np.ndarray:
        """Encode a multi-object scene by bundling per-object product vectors."""
        objects = scene.objects if isinstance(scene, SceneDescription) else tuple(scene)
        if not objects:
            raise CodebookError("cannot encode an empty scene")
        vectors = np.stack([self.encode_object(obj) for obj in objects])
        if len(objects) == 1:
            return vectors[0]
        return self.space.bundle(vectors)

    def encode_with_noise(
        self,
        scene: SceneDescription | Sequence[Mapping[str, str]],
        noise_std: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Encode a scene and perturb it with additive Gaussian noise.

        This models the imperfect query vectors produced by a real neural
        front-end; the factorizer must still recover the attributes.
        """
        if noise_std < 0:
            raise CodebookError(f"noise_std must be non-negative, got {noise_std}")
        rng = rng or np.random.default_rng()
        clean = self.encode_scene(scene)
        if noise_std == 0:
            return clean
        scale = noise_std * float(np.std(clean) or 1.0)
        return clean + rng.normal(0.0, scale, size=clean.shape)
