"""Hypervector spaces (VSA models).

Three VSA models cover the workloads analysed in the paper:

``BipolarSpace``
    Dense bipolar (+1/-1) vectors with element-wise (Hadamard) binding.  This
    is the multiply-add-permute model used by the factorizer's unbinding step
    (the paper's Step 1 "factor unbinding via element-wise multiplication").
``HRRSpace``
    Holographic reduced representations: real unitary vectors bound by
    circular convolution and unbound by circular correlation.  Circular
    convolution is the symbolic kernel the CogSys hardware accelerates.
``BinarySparseBlockSpace``
    NVSA-style binary sparse block codes: the vector is split into blocks and
    each block is one-hot; binding is block-wise circular convolution.

Every space exposes the same small interface (``random_vector``, ``bind``,
``unbind``, ``bundle``, ``similarity``, ``cleanup``), so the factorizer and
the encoders are agnostic to the representation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import DimensionMismatchError
from repro.vsa import operations as ops

__all__ = ["VSASpace", "BipolarSpace", "HRRSpace", "BinarySparseBlockSpace", "make_space"]


class VSASpace(abc.ABC):
    """Abstract hypervector space.

    Parameters
    ----------
    dim:
        Dimensionality of the hypervectors.
    seed:
        Optional seed for the space's private random generator.  Codebooks
        and random vectors drawn from the same seeded space are reproducible.
    """

    #: short identifier used by :func:`make_space` and reports
    name: str = "abstract"

    def __init__(self, dim: int, seed: int | None = None) -> None:
        if dim <= 0:
            raise DimensionMismatchError(f"dimension must be positive, got {dim}")
        self.dim = int(dim)
        self._rng = np.random.default_rng(seed)

    # -- vector creation ---------------------------------------------------
    @abc.abstractmethod
    def random_vector(self) -> np.ndarray:
        """Draw one random hypervector of this space."""

    def random_vectors(self, count: int) -> np.ndarray:
        """Draw ``count`` random hypervectors stacked into a matrix."""
        if count <= 0:
            raise DimensionMismatchError(f"count must be positive, got {count}")
        return np.stack([self.random_vector() for _ in range(count)])

    # -- algebra -----------------------------------------------------------
    @abc.abstractmethod
    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Associate two hypervectors into a composite one."""

    @abc.abstractmethod
    def unbind(self, composite: np.ndarray, factor: np.ndarray) -> np.ndarray:
        """Remove ``factor`` from ``composite`` (approximate inverse of bind)."""

    @abc.abstractmethod
    def bundle(self, vectors: np.ndarray) -> np.ndarray:
        """Superpose a set of hypervectors into one (set-like composition)."""

    @abc.abstractmethod
    def cleanup(self, vector: np.ndarray) -> np.ndarray:
        """Project an arbitrary vector back onto the space's code manifold."""

    @abc.abstractmethod
    def identity(self) -> np.ndarray:
        """Return the binding identity element."""

    # -- similarity ----------------------------------------------------------
    def similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        """Normalised similarity in [-1, 1] between two hypervectors."""
        return ops.cosine_similarity(a, b)

    def similarity_matrix(self, queries: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Pairwise similarities between rows of ``queries`` and ``keys``."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        keys = np.atleast_2d(np.asarray(keys, dtype=np.float64))
        if queries.shape[1] != keys.shape[1]:
            raise DimensionMismatchError(
                f"query dim {queries.shape[1]} != key dim {keys.shape[1]}"
            )
        qn = np.linalg.norm(queries, axis=1, keepdims=True)
        kn = np.linalg.norm(keys, axis=1, keepdims=True)
        qn[qn == 0] = 1.0
        kn[kn == 0] = 1.0
        return (queries / qn) @ (keys / kn).T

    # -- misc ----------------------------------------------------------------
    def bind_all(self, vectors: np.ndarray) -> np.ndarray:
        """Bind a sequence of hypervectors left to right."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        result = vectors[0]
        for row in vectors[1:]:
            result = self.bind(result, row)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(dim={self.dim})"


class BipolarSpace(VSASpace):
    """Dense bipolar vectors with element-wise binding (MAP model)."""

    name = "bipolar"

    def random_vector(self) -> np.ndarray:
        return self._rng.choice(np.array([-1.0, 1.0]), size=self.dim)

    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != b.shape:
            raise DimensionMismatchError(f"shape mismatch {a.shape} vs {b.shape}")
        return a * b

    def unbind(self, composite: np.ndarray, factor: np.ndarray) -> np.ndarray:
        # Bipolar binding is an involution: unbinding is the same multiply.
        return self.bind(composite, factor)

    def bundle(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        summed = vectors.sum(axis=0)
        return self.cleanup(summed)

    def cleanup(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        signs = np.sign(vector)
        # Break ties deterministically towards +1 so cleanup is idempotent.
        signs[signs == 0] = 1.0
        return signs

    def identity(self) -> np.ndarray:
        return np.ones(self.dim)


class HRRSpace(VSASpace):
    """Holographic reduced representations bound by circular convolution."""

    name = "hrr"

    def random_vector(self) -> np.ndarray:
        return ops.random_unitary(self.dim, rng=self._rng)

    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ops.circular_convolve(a, b)

    def unbind(self, composite: np.ndarray, factor: np.ndarray) -> np.ndarray:
        return ops.circular_correlate(composite, factor)

    def bundle(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        return vectors.sum(axis=0)

    def cleanup(self, vector: np.ndarray) -> np.ndarray:
        """Project onto the unitary manifold (unit-magnitude spectrum)."""
        vector = np.asarray(vector, dtype=np.float64)
        spectrum = np.fft.fft(vector)
        magnitude = np.abs(spectrum)
        magnitude[magnitude == 0] = 1.0
        projected = np.real(np.fft.ifft(spectrum / magnitude))
        return projected * np.sqrt(self.dim)

    def identity(self) -> np.ndarray:
        # The delta function has an all-ones spectrum, so convolving with it
        # leaves any vector unchanged.
        identity = np.zeros(self.dim)
        identity[0] = 1.0
        return identity


class BinarySparseBlockSpace(VSASpace):
    """NVSA-style binary sparse block codes.

    The ``dim``-dimensional vector is organised as ``num_blocks`` contiguous
    blocks of ``block_size`` elements; a well-formed codevector has exactly
    one active element per block.  Binding is block-wise circular convolution,
    which for one-hot blocks reduces to a modular shift of the active index.
    """

    name = "block"

    def __init__(self, dim: int, num_blocks: int = 4, seed: int | None = None) -> None:
        super().__init__(dim, seed=seed)
        if num_blocks <= 0 or dim % num_blocks != 0:
            raise DimensionMismatchError(
                f"dim {dim} must be divisible by num_blocks {num_blocks}"
            )
        self.num_blocks = int(num_blocks)
        self.block_size = dim // num_blocks

    def _blocks(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(
                f"expected shape ({self.dim},), got {vector.shape}"
            )
        return vector.reshape(self.num_blocks, self.block_size)

    def random_vector(self) -> np.ndarray:
        vector = np.zeros((self.num_blocks, self.block_size))
        indices = self._rng.integers(0, self.block_size, size=self.num_blocks)
        vector[np.arange(self.num_blocks), indices] = 1.0
        return vector.reshape(self.dim)

    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        blocks_a = self._blocks(a)
        blocks_b = self._blocks(b)
        out = np.empty_like(blocks_a)
        for i in range(self.num_blocks):
            out[i] = np.real(
                np.fft.ifft(np.fft.fft(blocks_a[i]) * np.fft.fft(blocks_b[i]))
            )
        return out.reshape(self.dim)

    def unbind(self, composite: np.ndarray, factor: np.ndarray) -> np.ndarray:
        blocks_c = self._blocks(composite)
        blocks_f = self._blocks(factor)
        out = np.empty_like(blocks_c)
        for i in range(self.num_blocks):
            out[i] = np.real(
                np.fft.ifft(np.fft.fft(blocks_c[i]) * np.conj(np.fft.fft(blocks_f[i])))
            )
        return out.reshape(self.dim)

    def bundle(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        return vectors.sum(axis=0)

    def cleanup(self, vector: np.ndarray) -> np.ndarray:
        blocks = self._blocks(vector)
        cleaned = np.zeros_like(blocks)
        winners = blocks.argmax(axis=1)
        cleaned[np.arange(self.num_blocks), winners] = 1.0
        return cleaned.reshape(self.dim)

    def identity(self) -> np.ndarray:
        identity = np.zeros((self.num_blocks, self.block_size))
        identity[:, 0] = 1.0
        return identity.reshape(self.dim)


_SPACE_REGISTRY = {
    BipolarSpace.name: BipolarSpace,
    HRRSpace.name: HRRSpace,
    BinarySparseBlockSpace.name: BinarySparseBlockSpace,
}


def make_space(kind: str, dim: int, seed: int | None = None, **kwargs) -> VSASpace:
    """Create a hypervector space by name (``bipolar``, ``hrr`` or ``block``)."""
    try:
        factory = _SPACE_REGISTRY[kind]
    except KeyError as exc:
        known = ", ".join(sorted(_SPACE_REGISTRY))
        raise DimensionMismatchError(
            f"unknown VSA space '{kind}'; known spaces: {known}"
        ) from exc
    return factory(dim, seed=seed, **kwargs)
