"""Vector-symbolic architecture (VSA) substrate.

This subpackage implements the symbolic representation layer that every
neurosymbolic workload in the paper builds on: hypervector spaces, the
algebraic operations over them (binding via circular convolution, bundling,
permutation, similarity), attribute codebooks and cleanup memories, and the
scene encoder that turns structured attribute descriptions into a single
entangled query hypervector.
"""

from repro.vsa.operations import (
    circular_convolve,
    circular_correlate,
    cosine_similarity,
    dot_similarity,
    normalize_vector,
    permute,
    random_bipolar,
    random_unitary,
)
from repro.vsa.spaces import (
    BipolarSpace,
    BinarySparseBlockSpace,
    HRRSpace,
    VSASpace,
    make_space,
)
from repro.vsa.codebook import Codebook, CodebookSet, ProductCodebook
from repro.vsa.memory import CleanupMemory
from repro.vsa.encoding import SceneEncoder, SceneDescription

__all__ = [
    "circular_convolve",
    "circular_correlate",
    "cosine_similarity",
    "dot_similarity",
    "normalize_vector",
    "permute",
    "random_bipolar",
    "random_unitary",
    "VSASpace",
    "BipolarSpace",
    "HRRSpace",
    "BinarySparseBlockSpace",
    "make_space",
    "Codebook",
    "CodebookSet",
    "ProductCodebook",
    "CleanupMemory",
    "SceneEncoder",
    "SceneDescription",
]
