"""Exception hierarchy shared across the CogSys reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DimensionMismatchError(ReproError):
    """Raised when hypervectors or matrices with incompatible shapes meet."""


class CodebookError(ReproError):
    """Raised for invalid codebook construction or lookup requests."""


class FactorizationError(ReproError):
    """Raised when the factorizer is configured or invoked incorrectly."""


class QuantizationError(ReproError):
    """Raised for unsupported precision formats or invalid quantization."""


class WorkloadError(ReproError):
    """Raised when a workload model is built with inconsistent parameters."""


class HardwareConfigError(ReproError):
    """Raised for invalid hardware configurations (array sizes, memories)."""


class BackendError(HardwareConfigError):
    """Raised for unknown backend names or invalid backend specifications.

    Subclasses :class:`HardwareConfigError` so callers of the deprecated
    device-factory shim keep catching the exception type they always did.
    """


class MappingError(ReproError):
    """Raised when an operation cannot be mapped onto the requested array."""


class SchedulingError(ReproError):
    """Raised when the scheduler receives an inconsistent operation graph."""


class TaskGenerationError(ReproError):
    """Raised when a cognitive task generator receives invalid parameters."""


class ServingError(ReproError):
    """Raised for invalid serving-simulator configurations or requests."""


class DesignSpaceError(ReproError):
    """Raised for invalid design-space grids, objectives or sweep requests."""
