"""Sharded-simulation equivalence tests.

``ServingSimulator.run(shards=N)`` factors the fleet into
router-independent components and simulates each separately; the merged
result must be **byte-identical** to the single-shard run (energy alone
may re-associate across components, so it is compared to 1e-12 relative
tolerance).  These tests pin that contract over the component planner,
both run surfaces (records and streamed), every batching policy, the
scalar fallback core, the process fan-out path, and the golden scenario
presets from :mod:`tests.serving.test_differential`.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.backends import ExecutionCache
from repro.errors import ServingError
from repro.serving.batching import (
    ContinuousBatching,
    FixedSizeBatching,
    NoBatching,
)
from repro.serving.fleet import (
    Fleet,
    FixedOwnersRouter,
    JoinShortestQueueRouter,
    RoundRobinRouter,
)
from repro.serving.scenarios import run_scenario
from repro.serving.sharding import plan_components
from repro.serving.simulator import ServingSimulator, columnar_chunks
from repro.serving.traffic import Request

WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")

GOLDEN_DIR = Path(__file__).parent / "golden"


class _Model:
    """Deterministic per-workload service model (1 W chip => E == t)."""

    scheduler = "fake"
    cached_reports = 0

    BASE = {"lvrf": 0.8, "mimonet": 0.2, "nvsa": 1.0, "prae": 0.5}

    def service_seconds(self, workload, batch_size):
        return self.BASE[workload] * (0.05 + 0.05 * batch_size)

    def energy_joules(self, workload, batch_size):
        return 2.0 * self.service_seconds(workload, batch_size)


def _stream(n=240, span_s=6.0):
    """A deterministic, moderately bursty request stream."""
    entries = sorted(
        ((i * 37 % 997) / 997.0 * span_s, WORKLOADS[i % len(WORKLOADS)])
        for i in range(n)
    )
    return [
        Request(request_id=index, workload=workload, arrival_s=arrival)
        for index, (arrival, workload) in enumerate(entries)
    ]


def _policies():
    return (
        NoBatching(),
        FixedSizeBatching(batch_size=3, max_wait_s=0.1),
        ContinuousBatching(max_batch_size=4, slo_s=0.5),
    )


def _simulator(num_chips=8, router="round_robin", policy=None, vectorize=True):
    return ServingSimulator(
        service_model=_Model(),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy or ContinuousBatching(max_batch_size=4),
        vectorize=vectorize,
    )


def _assert_equivalent(base, sharded):
    assert sharded.records == base.records
    assert sharded.chip_busy_s == base.chip_busy_s
    assert sharded.chip_requests == base.chip_requests
    assert sharded.num_batches == base.num_batches
    assert sharded.horizon_s == base.horizon_s
    assert sharded.first_arrival_s == base.first_arrival_s
    assert math.isclose(
        sharded.energy_joules, base.energy_joules, rel_tol=1e-12
    )


class TestPlanComponents:
    def test_round_robin_splits_per_chip(self):
        plan = plan_components(RoundRobinRouter(), 4)
        assert plan.mode == "rr"
        assert plan.components == ((0,), (1,), (2,), (3,))
        assert plan.comp_of_workload is None

    def test_jsq_cannot_split(self):
        reason = plan_components(JoinShortestQueueRouter(), 4)
        assert isinstance(reason, str)
        assert "join-shortest-queue" in reason

    def test_single_chip_cannot_split(self):
        reason = plan_components(RoundRobinRouter(), 1)
        assert "single-chip" in reason

    def test_disjoint_owner_pools_split(self):
        router = FixedOwnersRouter({"a": (0, 1), "b": (2, 3)})
        plan = plan_components(router, 4)
        assert plan.mode == "owners"
        assert plan.components == ((0, 1), (2, 3))
        assert plan.comp_of_workload == {"a": 0, "b": 1}

    def test_overlapping_pools_union(self):
        router = FixedOwnersRouter({"a": (0, 1), "b": (1, 2), "c": (3,)})
        plan = plan_components(router, 4)
        assert plan.components == ((0, 1, 2), (3,))
        assert plan.comp_of_workload == {"a": 0, "b": 0, "c": 1}

    def test_fully_coupled_pools_fall_back(self):
        router = FixedOwnersRouter({"a": (0, 1), "b": (1, 2), "c": (2, 3)})
        reason = plan_components(router, 4)
        assert isinstance(reason, str)
        assert "couple every chip" in reason


class TestRunShardedEquivalence:
    @pytest.mark.parametrize("policy", _policies(), ids=lambda p: p.name)
    @pytest.mark.parametrize("shards", (2, 4, 8))
    def test_round_robin_all_policies(self, policy, shards):
        stream = _stream()
        base = _simulator(policy=policy).run(stream)
        sharded = _simulator(policy=policy).run(stream, shards=shards)
        _assert_equivalent(base, sharded)
        assert sharded.provenance["shards"] == shards
        assert sharded.provenance["shards_effective"] == 8

    def test_affinity_fleet_shards_by_ownership(self):
        stream = _stream()
        base = _simulator(num_chips=4, router="affinity").run(stream)
        sharded = _simulator(num_chips=4, router="affinity").run(
            stream, shards=4
        )
        _assert_equivalent(base, sharded)
        assert sharded.provenance["shards_effective"] >= 2
        assert "shard_fallback" not in sharded.provenance

    def test_jsq_falls_back_with_reason(self):
        stream = _stream(n=60)
        base = _simulator(router="jsq").run(stream)
        sharded = _simulator(router="jsq").run(stream, shards=4)
        _assert_equivalent(base, sharded)
        assert sharded.provenance["shards_effective"] == 1
        assert "join-shortest-queue" in sharded.provenance["shard_fallback"]

    def test_single_chip_falls_back(self):
        stream = _stream(n=40)
        sharded = _simulator(num_chips=1).run(stream, shards=4)
        assert "single-chip" in sharded.provenance["shard_fallback"]

    def test_scalar_core_sharded_matches_vectorized_single(self):
        stream = _stream()
        base = _simulator(vectorize=True).run(stream)
        sharded = _simulator(vectorize=False).run(stream, shards=4)
        _assert_equivalent(base, sharded)

    def test_unsorted_input_is_normalized(self):
        stream = _stream(n=80)
        base = _simulator().run(stream)
        sharded = _simulator().run(list(reversed(stream)), shards=4)
        _assert_equivalent(base, sharded)


class TestStreamSharded:
    def _chunks(self, stream, size=64):
        return columnar_chunks(stream, size)

    def test_streamed_merge_is_byte_identical(self):
        stream = _stream()
        sim = _simulator()
        base = sim.run_stream(self._chunks(stream), WORKLOADS)
        sharded = sim.run_stream(self._chunks(stream), WORKLOADS, shards=4)
        for chip in range(sim.fleet.num_chips):
            assert np.array_equal(
                sharded.chip_latency_s[chip], base.chip_latency_s[chip]
            )
        assert np.array_equal(
            np.sort(sharded.latency_values()), np.sort(base.latency_values())
        )
        assert np.array_equal(
            np.sort(sharded.queue_delay_values()),
            np.sort(base.queue_delay_values()),
        )
        base_by_workload = base.workload_latency_values()
        for name, latencies in sharded.workload_latency_values().items():
            assert np.array_equal(
                np.sort(latencies), np.sort(base_by_workload[name])
            )
        assert sharded.chip_busy_s == base.chip_busy_s
        assert sharded.chip_requests == base.chip_requests
        assert sharded.num_batches == base.num_batches
        assert sharded.horizon_s == base.horizon_s
        assert math.isclose(
            sharded.energy_joules, base.energy_joules, rel_tol=1e-12
        )

    def test_streamed_provenance_records_components(self):
        stream = _stream(n=60)
        sim = _simulator()
        sharded = sim.run_stream(
            self._chunks(stream), WORKLOADS, provenance={"origin": "test"},
            shards=2,
        )
        assert sharded.provenance["shards"] == 2
        assert sharded.provenance["origin"] == "test"
        assert sharded.provenance["shard_components"] == [
            [chip] for chip in range(8)
        ]

    def test_streamed_jsq_falls_back_with_reason(self):
        stream = _stream(n=60)
        sim = _simulator(router="jsq")
        base = sim.run_stream(self._chunks(stream), WORKLOADS)
        sharded = sim.run_stream(self._chunks(stream), WORKLOADS, shards=4)
        for chip in range(sim.fleet.num_chips):
            assert np.array_equal(
                sharded.chip_latency_s[chip], base.chip_latency_s[chip]
            )
        assert "join-shortest-queue" in sharded.provenance["shard_fallback"]


class TestProcessFanOut:
    def test_forced_two_workers_match_sequential(self):
        # ExecutionCache is the shippable spec; two processes rebuild it
        # and their merged result must equal the in-process run.
        stream = _stream(n=96, span_s=0.05)
        model = ExecutionCache()
        sim = ServingSimulator(
            service_model=model,
            fleet=Fleet(num_chips=4, router="round_robin"),
            batching_policy=ContinuousBatching(max_batch_size=4),
        )
        base = sim.run(stream)
        sharded = sim.run(stream, shards=4, shard_workers=2)
        _assert_equivalent(base, sharded)
        assert sharded.provenance["shard_workers"] == 2


class TestShardArgumentErrors:
    def test_zero_shards_rejected(self):
        with pytest.raises(ServingError, match="shards must be >= 1"):
            _simulator().run(_stream(n=8), shards=0)

    def test_zero_workers_rejected(self):
        with pytest.raises(ServingError, match="shard workers must be >= 1"):
            _simulator().run(_stream(n=8), shards=2, shard_workers=0)

    def test_duplicate_ids_rejected(self):
        stream = _stream(n=8)
        stream[3] = Request(
            request_id=stream[2].request_id,
            workload=stream[3].workload,
            arrival_s=stream[3].arrival_s,
        )
        with pytest.raises(ServingError, match="duplicate request ids"):
            _simulator().run(stream, shards=2)

    def test_unknown_streamed_workload_rejected(self):
        sim = _simulator(num_chips=2)
        chunks = [([0.0], ["nvsa"], [0]), ([0.1], ["mystery"], [1])]
        with pytest.raises(ServingError, match="mystery"):
            sim.run_stream(chunks, ("nvsa",), shards=2)


@pytest.mark.parametrize(
    "name", ("steady", "diurnal", "flash_crowd", "mixed_workload")
)
class TestGoldenSharded:
    """shards=4 must reproduce the frozen golden records of every preset."""

    def test_records_match_golden(self, name, tmp_path):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        _, result = run_scenario(
            name,
            seed=golden["seed"],
            load_scale=golden["load_scale"],
            duration_scale=golden["duration_scale"],
            shards=4,
        )
        produced = [
            [
                record.request_id,
                record.workload,
                record.chip,
                record.arrival_s,
                record.dispatch_s,
                record.finish_s,
                record.batch_size,
            ]
            for record in result.records
        ]
        assert produced == golden["records"]
        assert result.num_batches == golden["num_batches"]
        assert list(result.chip_busy_s) == golden["chip_busy_s"]
        assert list(result.chip_requests) == golden["chip_requests"]
        assert result.horizon_s == golden["horizon_s"]
        assert math.isclose(
            result.energy_joules, golden["energy_joules"], rel_tol=1e-12
        )
        assert result.provenance["shards"] == 4
