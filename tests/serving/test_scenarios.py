"""Tests for the scenario presets and the acceptance-level guarantees."""

import time

import pytest

from repro.errors import ServingError
from repro.evaluation.serving_experiments import latency_load_sweep
from repro.serving.fleet import AcceleratorServiceModel
from repro.serving.scenarios import SCENARIOS, get_scenario, run_scenario


@pytest.fixture(scope="module")
def shared_model():
    """One memoized accelerator model shared by every scenario test."""
    return AcceleratorServiceModel()


class TestPresets:
    def test_the_presets_exist(self):
        assert list(SCENARIOS) == [
            "steady", "diurnal", "flash_crowd", "mixed_workload", "ramp_surge",
            "mix_shift", "chip_outage", "straggler_storm", "session_surge",
        ]
        for scenario in SCENARIOS.values():
            assert scenario.description
            assert scenario.num_chips >= 1
            assert scenario.slo_s > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ServingError, match="unknown scenario"):
            get_scenario("bogus")

    def test_invalid_scales_rejected(self):
        with pytest.raises(ServingError):
            run_scenario("steady", load_scale=0.0)
        with pytest.raises(ServingError):
            run_scenario("steady", duration_scale=-1.0)


class TestRunScenario:
    def test_scenario_runs_and_reports_provenance(self, shared_model):
        scenario, result = run_scenario(
            "steady", seed=3, duration_scale=0.05, service_model=shared_model
        )
        assert scenario.name == "steady"
        assert result.num_requests > 0
        assert result.provenance["scenario"] == "steady"
        assert result.provenance["seed"] == 3
        assert result.num_chips == scenario.num_chips

    def test_overrides_are_respected(self, shared_model):
        _, result = run_scenario(
            "steady",
            duration_scale=0.05,
            num_chips=1,
            router="round_robin",
            policy="none",
            service_model=shared_model,
        )
        assert result.num_chips == 1
        assert result.provenance["router"] == "round_robin"
        assert result.provenance["batching_policy"] == "none"

    def test_duration_scale_scales_traffic(self, shared_model):
        _, short = run_scenario(
            "steady", duration_scale=0.05, service_model=shared_model
        )
        _, longer = run_scenario(
            "steady", duration_scale=0.2, service_model=shared_model
        )
        assert longer.num_requests > 2 * short.num_requests

    def test_every_preset_executes(self, shared_model):
        for name in SCENARIOS:
            _, result = run_scenario(
                name, duration_scale=0.05, service_model=shared_model
            )
            assert result.num_requests > 0
            assert 0.0 < result.utilization <= 1.0


class TestAcceptance:
    def test_same_seed_and_scenario_reproduce_the_latency_trace(self, shared_model):
        """Acceptance: identical per-request latency traces for equal seeds."""
        _, first = run_scenario(
            "flash_crowd", seed=11, duration_scale=0.1, service_model=shared_model
        )
        _, second = run_scenario(
            "flash_crowd", seed=11, duration_scale=0.1, service_model=shared_model
        )
        assert first.latencies_s() == second.latencies_s()
        assert [r.chip for r in first.records] == [r.chip for r in second.records]
        _, other_seed = run_scenario(
            "flash_crowd", seed=12, duration_scale=0.1, service_model=shared_model
        )
        assert first.latencies_s() != other_seed.latencies_s()

    def test_full_load_sweep_finishes_within_budget(self):
        """Acceptance: 4 workloads x 5 load points in well under 60 s."""
        started = time.perf_counter()
        rows = latency_load_sweep(requests_per_point=100)
        elapsed = time.perf_counter() - started
        assert len(rows) == 4 * 5
        assert elapsed < 60.0
        # Memoization keeps the whole sweep to a handful of simulations, so
        # in practice the sweep lands one order of magnitude below the cap.
        workloads = {row["workload"] for row in rows}
        assert workloads == {"lvrf", "mimonet", "nvsa", "prae"}
