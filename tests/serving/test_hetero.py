"""Tests for heterogeneous serving fleets and symbolic-affinity routing."""

from dataclasses import dataclass

import pytest

from repro.errors import BackendError, ServingError
from repro.serving.batching import build_policy
from repro.serving.fleet import (
    Fleet,
    FleetServiceModel,
    SymbolicAffinityRouter,
)
from repro.serving.metrics import per_backend_summary
from repro.serving.scenarios import run_scenario
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import PoissonArrivals, Request, WorkloadMix

HETERO = ("cogsys", "cogsys", "a100", "xavier_nx")


@dataclass
class StubChip:
    chip_id: int
    busy: bool = False
    inflight: int = 0
    queue_depth: int = 0


class TestFleetBackends:
    def test_default_fleet_is_all_cogsys(self):
        fleet = Fleet(num_chips=3)
        assert fleet.chip_backends == ("cogsys",) * 3
        assert not fleet.is_heterogeneous

    def test_backends_cycle_across_chips(self):
        fleet = Fleet(num_chips=4, backends=("cogsys", "a100"))
        assert fleet.chip_backends == ("cogsys", "a100", "cogsys", "a100")
        assert fleet.is_heterogeneous

    def test_unknown_backend_rejected_with_typed_error(self):
        with pytest.raises(BackendError, match="unknown backend"):
            Fleet(num_chips=2, backends=("cogsys", "warp_drive"))

    def test_more_backends_than_chips_rejected(self):
        with pytest.raises(ServingError, match="must not outnumber"):
            Fleet(num_chips=2, backends=("cogsys", "a100", "xavier_nx"))

    def test_reference_chip_prefers_baseline_backends(self):
        # Symbolic demand is only visible where symbolic is NOT accelerated.
        assert Fleet(num_chips=4, backends=HETERO).reference_chip == 2
        assert Fleet(num_chips=2, backends=("cogsys",)).reference_chip == 0


class TestFleetServiceModel:
    def test_chips_share_one_cache_per_backend(self):
        model = FleetServiceModel(Fleet(num_chips=4, backends=HETERO))
        assert model.for_chip(0) is model.for_chip(1)  # both cogsys
        assert model.for_chip(2) is not model.for_chip(0)
        assert model.for_chip(2).backend_name == "a100"

    def test_chip_out_of_range_rejected(self):
        model = FleetServiceModel(Fleet(num_chips=2))
        with pytest.raises(ServingError, match="outside"):
            model.for_chip(5)
        with pytest.raises(ServingError, match="outside"):
            model.for_chip(-1)

    def test_scheduler_string_joins_distinct_backends(self):
        assert FleetServiceModel(Fleet(num_chips=2)).scheduler == "adaptive"
        hetero = FleetServiceModel(Fleet(num_chips=4, backends=HETERO))
        assert hetero.scheduler == "adaptive+sequential"


class TestSymbolicAffinityRouter:
    FRACTIONS = {"nvsa": 0.8, "mimonet": 0.2}

    def _router(self, backends=HETERO, threshold=0.5):
        return SymbolicAffinityRouter(
            backends, ("nvsa", "mimonet"), self.FRACTIONS.__getitem__, threshold
        )

    def test_pools_split_by_native_symbolic_support(self):
        router = self._router()
        assert router.symbolic_pool == (0, 1)
        assert router.neural_pool == (2, 3)
        assert router.owners["nvsa"] == (0, 1)
        assert router.owners["mimonet"] == (2, 3)

    def test_least_loaded_owner_wins(self):
        router = self._router()
        chips = [StubChip(i) for i in range(4)]
        chips[0].queue_depth = 3
        assert router.route(Request(0, "nvsa", 0.0), chips) == 1
        chips[2].busy = True
        chips[2].inflight = 2
        assert router.route(Request(1, "mimonet", 0.0), chips) == 3

    def test_homogeneous_fleet_degrades_to_whole_fleet_pools(self):
        router = self._router(backends=("cogsys", "cogsys"))
        assert router.symbolic_pool == (0, 1)
        assert router.neural_pool == (0, 1)

    def test_unknown_workload_rejected(self):
        router = self._router()
        with pytest.raises(ServingError, match="no pool"):
            router.route(Request(0, "prae", 0.0), [StubChip(i) for i in range(4)])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ServingError, match="threshold"):
            self._router(threshold=1.5)


class TestHeterogeneousSimulation:
    def _run(self, seed=0):
        fleet = Fleet(num_chips=4, router="symbolic_affinity", backends=HETERO)
        simulator = ServingSimulator(
            fleet=fleet,
            batching_policy=build_policy("continuous", max_batch_size=8, slo_s=5e-3),
        )
        mix = WorkloadMix({"nvsa": 0.6, "mimonet": 0.4})
        requests = PoissonArrivals(800.0, mix).generate(0.25, seed=seed)
        return simulator.run(requests)

    def test_run_is_deterministic(self):
        first = self._run()
        second = self._run()
        assert first.records == second.records
        assert first.chip_busy_s == second.chip_busy_s
        assert first.chip_backends == HETERO

    def test_per_backend_utilization_in_metrics(self):
        result = self._run()
        rows = per_backend_summary(result, 5e-3)
        assert [row["backend"] for row in rows] == ["a100", "cogsys", "xavier_nx"]
        assert all("utilization" in row for row in rows)
        by_backend = {row["backend"]: row for row in rows}
        # Symbolic-heavy nvsa lands on the CogSys pool, mimonet on the
        # neural pool — both pools must actually serve traffic.
        assert by_backend["cogsys"]["requests"] > 0
        assert by_backend["cogsys"]["utilization"] > 0
        assert (
            by_backend["a100"]["requests"] + by_backend["xavier_nx"]["requests"] > 0
        )
        assert sum(row["requests"] for row in rows) == result.num_requests

    def test_provenance_names_the_backends(self):
        result = self._run()
        assert result.provenance["backends"] == ["cogsys", "a100", "xavier_nx"]
        assert result.provenance["router"] == "symbolic_affinity"

    def test_chip_oblivious_model_rejected_on_hetero_fleet(self, fake_model):
        fleet = Fleet(num_chips=4, backends=HETERO)
        simulator = ServingSimulator(service_model=fake_model, fleet=fleet)
        with pytest.raises(ServingError, match="FleetServiceModel"):
            simulator.run([Request(0, "nvsa", 0.0)])

    def test_reportless_model_with_symbolic_affinity_is_a_typed_error(self, fake_model):
        # Duck-typed models without report() cannot answer the affinity
        # oracle — must fail with ServingError, not AttributeError.
        simulator = ServingSimulator(
            service_model=fake_model,
            fleet=Fleet(num_chips=2, router="symbolic_affinity"),
        )
        with pytest.raises(ServingError, match="report"):
            simulator.run([Request(0, "nvsa", 0.0)])

    def test_mismatched_fleet_service_model_rejected(self):
        model = FleetServiceModel(Fleet(num_chips=2))
        simulator = ServingSimulator(
            service_model=model, fleet=Fleet(num_chips=4, backends=HETERO)
        )
        with pytest.raises(ServingError, match="do not match"):
            simulator.run([Request(0, "nvsa", 0.0)])

    def test_wrong_backend_cache_rejected_on_homogeneous_fleet(self):
        from repro.backends import ExecutionCache

        simulator = ServingSimulator(
            service_model=ExecutionCache("cogsys"),
            fleet=Fleet(num_chips=2, backends=("a100",)),
        )
        with pytest.raises(ServingError, match="answers for backend 'cogsys'"):
            simulator.run([Request(0, "nvsa", 0.0)])

    def test_scheduler_override_applies_per_backend(self):
        # "sequential" is valid everywhere; "adaptive" only pins the CogSys
        # chips while the device chips keep their sequential default.
        fleet = Fleet(num_chips=4, backends=HETERO)
        pinned = FleetServiceModel(fleet, scheduler="sequential")
        assert pinned.scheduler == "sequential"
        mixed = FleetServiceModel(fleet, scheduler="adaptive")
        assert mixed.for_chip(0).scheduler == "adaptive"
        assert mixed.for_chip(2).scheduler == "sequential"

    def test_scheduler_unsupported_by_every_backend_fails_fast(self):
        with pytest.raises(BackendError, match="no backend in the fleet"):
            FleetServiceModel(
                Fleet(num_chips=4, backends=HETERO), scheduler="warp_speed"
            )
        with pytest.raises(BackendError, match="no backend in the fleet"):
            FleetServiceModel(
                Fleet(num_chips=2, backends=("a100",)), scheduler="adaptive"
            )


class TestHeterogeneousScenario:
    def test_run_scenario_with_backends_override(self):
        scenario, result = run_scenario(
            "mixed_workload",
            duration_scale=0.05,
            backends=HETERO,
            router="symbolic_affinity",
        )
        assert result.num_chips == len(HETERO)
        assert result.chip_backends == HETERO
        rows = per_backend_summary(result, scenario.slo_s)
        assert {row["backend"] for row in rows} == set(HETERO)

    def test_backends_without_num_chips_sizes_the_fleet(self):
        _, result = run_scenario(
            "steady", duration_scale=0.02, backends=("cogsys", "a100")
        )
        assert result.num_chips == 2

    def test_legacy_positional_service_model_slot_is_preserved(self):
        # The pre-PR signature ended (..., num_chips, router, policy,
        # service_model); the new backends parameter must come after it.
        from repro.backends import ExecutionCache

        model = ExecutionCache("cogsys")
        _, result = run_scenario(
            "steady", 0, 1.0, 0.02, 1, "jsq", "none", model
        )
        assert result.num_chips == 1
        assert model.cached_reports > 0
