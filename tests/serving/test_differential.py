"""Differential tests against golden runs of the pre-refactor simulator.

``tests/serving/golden/*.json`` was captured from the original
heapq-per-request event loop (commit ``07b27c3``) on every scenario preset
at ``seed=0, load_scale=1.0, duration_scale=0.1``: the full per-request
record stream, the chip accounting, and the summary/per-workload metric
rows.  The rewritten event core must reproduce every value **exactly** —
same floats, same ordering — proving the ≥5x hot-path rewrite changed no
semantics.  ``ramp_surge.json`` was captured later (commit ``aab4ba7``,
at ``load_scale=2.0`` so the surge saturates both chips) to freeze the
scalar jsq routing reference just before the water-filling coupled engine
landed.  Regenerating these files is only legitimate when serving
semantics change on purpose; the capture recipe is in
``tests/serving/golden/README.md``.
"""

import json
from pathlib import Path

import pytest

from repro.backends import ExecutionCache
from repro.serving.metrics import per_workload_summary, summarize_result
from repro.serving.scenarios import get_scenario, run_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

GOLDEN_SCENARIOS = (
    "steady", "diurnal", "flash_crowd", "mixed_workload", "ramp_surge",
)


@pytest.fixture(scope="module")
def shared_model():
    """One memoized execution cache shared by every golden replay."""
    return ExecutionCache()


def _load(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
class TestGoldenEquivalence:
    def test_records_are_byte_identical(self, name, shared_model):
        golden = _load(name)
        _, result = run_scenario(
            name,
            seed=golden["seed"],
            load_scale=golden["load_scale"],
            duration_scale=golden["duration_scale"],
            service_model=shared_model,
        )
        produced = [
            [
                record.request_id,
                record.workload,
                record.chip,
                record.arrival_s,
                record.dispatch_s,
                record.finish_s,
                record.batch_size,
            ]
            for record in result.records
        ]
        # Exact equality, floats included: the event core must not perturb
        # a single dispatch decision or timestamp.
        assert produced == golden["records"]

    def test_fleet_accounting_is_byte_identical(self, name, shared_model):
        golden = _load(name)
        _, result = run_scenario(
            name,
            seed=golden["seed"],
            load_scale=golden["load_scale"],
            duration_scale=golden["duration_scale"],
            service_model=shared_model,
        )
        assert result.num_requests == golden["num_requests"]
        assert result.num_chips == golden["num_chips"]
        assert result.num_batches == golden["num_batches"]
        assert result.energy_joules == golden["energy_joules"]
        assert result.horizon_s == golden["horizon_s"]
        assert result.first_arrival_s == golden["first_arrival_s"]
        assert list(result.chip_busy_s) == golden["chip_busy_s"]
        assert list(result.chip_requests) == golden["chip_requests"]
        assert list(result.chip_backends) == golden["chip_backends"]

    def test_metric_rows_are_byte_identical(self, name, shared_model):
        golden = _load(name)
        scenario = get_scenario(name)
        _, result = run_scenario(
            name,
            seed=golden["seed"],
            load_scale=golden["load_scale"],
            duration_scale=golden["duration_scale"],
            service_model=shared_model,
        )
        assert summarize_result(result, scenario.slo_s) == golden["summary"]
        assert (
            per_workload_summary(result, scenario.slo_s)
            == golden["per_workload"]
        )
