"""Property-based invariant harness for the serving event core.

Hypothesis generates adversarial request streams — simultaneous bursts,
duplicate arrival instants, skewed workload mixes — and every stream is
served across **all** batching policies and **all** routers.  Three
invariants must hold unconditionally:

* **Conservation** — every arrival completes exactly once (no loss, no
  duplication), whatever the policy/router combination.
* **Causality** — ``arrival <= dispatch <= finish`` for every request.
* **Per-chip non-overlap** — a chip never executes two batches at once:
  ordered by dispatch time, each batch on a chip starts at or after the
  previous batch's finish.

A fourth property pins the optimization itself: the slot-keyed fast path
(policies implementing ``plan``) must produce byte-identical results to
the generic materialized-queue path (``select`` only), for every policy,
on every generated stream.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.batching import (
    BatchingPolicy,
    ContinuousBatching,
    FixedSizeBatching,
    NoBatching,
)
from repro.serving.fleet import Fleet
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import Request

WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")

ROUTERS = ("round_robin", "jsq", "affinity", "symbolic_affinity")


class _Report:
    def __init__(self, symbolic_fraction):
        self.symbolic_fraction = symbolic_fraction


class InvariantFakeModel:
    """Deterministic service model covering every router's needs.

    Service times differ per workload and grow sub-linearly with batch
    size; ``report`` supplies the symbolic fractions the symbolic-affinity
    router asks for.
    """

    scheduler = "fake"
    cached_reports = 0

    BASE = {"lvrf": 0.8, "mimonet": 0.2, "nvsa": 1.0, "prae": 0.5}
    SYMBOLIC = {"lvrf": 0.9, "mimonet": 0.1, "nvsa": 0.8, "prae": 0.3}

    def service_seconds(self, workload, batch_size):
        return self.BASE[workload] * (0.5 + 0.5 * batch_size)

    def energy_joules(self, workload, batch_size):
        return self.service_seconds(workload, batch_size)

    def report(self, workload, batch_size):
        return _Report(self.SYMBOLIC[workload])


def _policies():
    """One instance of every batching policy, with batching-visible knobs."""
    return (
        NoBatching(),
        FixedSizeBatching(batch_size=3, max_wait_s=0.4),
        ContinuousBatching(max_batch_size=4, slo_s=2.0),
    )


#: request streams: arrivals on a 0.1 s grid so simultaneous-arrival and
#: wake-up tie-breaking paths are exercised, not just the generic case
request_streams = st.lists(
    st.tuples(
        st.sampled_from(WORKLOADS),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=40,
).map(
    lambda entries: [
        Request(request_id=index, workload=workload, arrival_s=tick / 10.0)
        for index, (workload, tick) in enumerate(
            sorted(entries, key=lambda e: e[1])
        )
    ]
)


def _run(requests, num_chips, router, policy, shards=1):
    simulator = ServingSimulator(
        service_model=InvariantFakeModel(),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy,
    )
    return simulator.run(requests, shards=shards)


def _batches_by_chip(result):
    """Per chip: the (dispatch, finish) spans of its batches, sorted."""
    spans = {}
    for record in result.records:
        spans.setdefault(record.chip, set()).add(
            (record.dispatch_s, record.finish_s)
        )
    return {chip: sorted(batch) for chip, batch in spans.items()}


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams, num_chips=st.integers(1, 3))
    def test_conservation_causality_nonoverlap_all_policies_all_routers(
        self, stream, num_chips
    ):
        for router in ROUTERS:
            for policy in _policies():
                result = _run(stream, num_chips, router, policy)

                # Conservation: every arrival completes exactly once.
                assert result.num_requests == len(stream)
                assert [r.request_id for r in result.records] == [
                    request.request_id for request in stream
                ]

                # Causality per request.
                for record in result.records:
                    assert (
                        record.arrival_s <= record.dispatch_s <= record.finish_s
                    )
                    assert math.isfinite(record.finish_s)

                # Per-chip non-overlap of service intervals.
                for spans in _batches_by_chip(result).values():
                    for (_, prev_finish), (next_dispatch, _) in zip(
                        spans, spans[1:]
                    ):
                        assert next_dispatch >= prev_finish

    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams, num_chips=st.integers(1, 3))
    def test_batches_are_single_workload_and_accounting_adds_up(
        self, stream, num_chips
    ):
        for router in ROUTERS:
            for policy in _policies():
                result = _run(stream, num_chips, router, policy)
                by_batch = {}
                for record in result.records:
                    by_batch.setdefault(
                        (record.chip, record.dispatch_s, record.finish_s), []
                    ).append(record)
                assert len(by_batch) == result.num_batches
                for members in by_batch.values():
                    assert len({r.workload for r in members}) == 1
                    # batch_size annotations agree with the actual batch
                    assert {r.batch_size for r in members} == {len(members)}
                # chip occupancy equals the sum of its batch spans
                for chip, spans in _batches_by_chip(result).items():
                    busy = sum(finish - start for start, finish in spans)
                    assert math.isclose(
                        busy, result.chip_busy_s[chip], rel_tol=1e-9
                    )
                assert sum(result.chip_requests) == len(stream)


class _ForcedGenericPolicy(BatchingPolicy):
    """Wrapper that hides a policy's ``plan``, forcing the generic path."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.single_group_cap = None
        self.eager_singleton = False

    def select(self, queue, now_s):
        return self.inner.select(queue, now_s)


class TestFastPathEquivalence:
    """The slot-keyed fast path must match the generic select path exactly."""

    @settings(max_examples=30, deadline=None)
    @given(
        stream=request_streams,
        num_chips=st.integers(1, 3),
        router=st.sampled_from(ROUTERS),
    )
    def test_fast_and_generic_paths_are_byte_identical(
        self, stream, num_chips, router
    ):
        for policy_factory in (
            lambda: NoBatching(),
            lambda: FixedSizeBatching(batch_size=3, max_wait_s=0.4),
            lambda: ContinuousBatching(max_batch_size=4, slo_s=2.0),
        ):
            fast = _run(stream, num_chips, router, policy_factory())
            generic = _run(
                stream, num_chips, router,
                _ForcedGenericPolicy(policy_factory()),
            )
            assert fast.records == generic.records
            assert fast.chip_busy_s == generic.chip_busy_s
            assert fast.chip_requests == generic.chip_requests
            assert fast.energy_joules == generic.energy_joules
            assert fast.num_batches == generic.num_batches
            assert fast.horizon_s == generic.horizon_s


class TestShardedEquivalence:
    """Sharded execution must merge back to the single-shard result."""

    @settings(max_examples=20, deadline=None)
    @given(
        stream=request_streams,
        num_chips=st.integers(2, 4),
        shards=st.integers(2, 4),
        router=st.sampled_from(("round_robin", "affinity")),
    )
    def test_sharded_run_matches_single_shard(
        self, stream, num_chips, shards, router
    ):
        for policy in _policies():
            base = _run(stream, num_chips, router, policy)
            sharded = _run(stream, num_chips, router, policy, shards=shards)
            assert sharded.records == base.records
            assert sharded.chip_busy_s == base.chip_busy_s
            assert sharded.chip_requests == base.chip_requests
            assert sharded.num_batches == base.num_batches
            assert sharded.horizon_s == base.horizon_s
            assert math.isclose(
                sharded.energy_joules, base.energy_joules, rel_tol=1e-12
            )
            assert sharded.provenance["shards"] == shards


#: dense bursty streams: arrivals on a 0.01 s grid packed tightly enough
#: that a 2-chip fleet saturates and whole runs dispatch as water-fill
#: spans (the vectorized path needs runs past its minimum span length)
dense_streams = st.lists(
    st.tuples(
        st.sampled_from(WORKLOADS),
        st.integers(min_value=0, max_value=300),
    ),
    min_size=60,
    max_size=160,
).map(
    lambda entries: [
        Request(request_id=index, workload=workload, arrival_s=tick / 100.0)
        for index, (workload, tick) in enumerate(
            sorted(entries, key=lambda e: e[1])
        )
    ]
)


class TestCoupledEngineEquivalence:
    """The water-filling jsq engine must match the scalar reference loop.

    Dense arrival runs saturate the fleet, so whole spans dispatch
    through the vectorized water-fill and the indexed min-queue;
    ``vectorize=False`` forces the per-request scalar reference loop on
    the same stream.  Records, fleet accounting, telemetry windows and
    the streamed path across chunk boundaries must all agree byte for
    byte, for every policy and chip counts 2-9.
    """

    @staticmethod
    def _run_jsq(requests, num_chips, policy, vectorize, **kwargs):
        simulator = ServingSimulator(
            service_model=InvariantFakeModel(),
            fleet=Fleet(num_chips=num_chips, router="jsq"),
            batching_policy=policy,
            vectorize=vectorize,
        )
        return simulator.run(requests, **kwargs)

    @settings(max_examples=12, deadline=None)
    @given(stream=dense_streams, num_chips=st.integers(2, 9))
    def test_water_fill_matches_scalar_reference(self, stream, num_chips):
        for policy in _policies():
            fast = self._run_jsq(
                stream, num_chips, policy, True, telemetry_window_s=0.05
            )
            slow = self._run_jsq(
                stream, num_chips, policy, False, telemetry_window_s=0.05
            )
            assert fast.provenance["coupled_engine"] == "water_fill"
            assert slow.provenance["coupled_engine"] == "scalar"
            assert fast.records == slow.records
            assert fast.chip_busy_s == slow.chip_busy_s
            assert fast.chip_requests == slow.chip_requests
            assert fast.energy_joules == slow.energy_joules
            assert fast.num_batches == slow.num_batches
            assert fast.horizon_s == slow.horizon_s
            assert fast.telemetry == slow.telemetry

    @settings(max_examples=10, deadline=None)
    @given(
        stream=dense_streams,
        num_chips=st.integers(2, 9),
        chunk_size=st.sampled_from((7, 33, 4096)),
    )
    def test_streamed_water_fill_matches_scalar_across_chunks(
        self, stream, num_chips, chunk_size
    ):
        from repro.serving.simulator import columnar_chunks

        workloads = tuple(dict.fromkeys(r.workload for r in stream))
        for policy in _policies():
            results = []
            for vectorize in (True, False):
                simulator = ServingSimulator(
                    service_model=InvariantFakeModel(),
                    fleet=Fleet(num_chips=num_chips, router="jsq"),
                    batching_policy=policy,
                    vectorize=vectorize,
                )
                results.append(
                    simulator.run_stream(
                        columnar_chunks(stream, chunk_size), workloads,
                        telemetry_window_s=0.05,
                    )
                )
            fast, slow = results
            assert fast.chip_busy_s == slow.chip_busy_s
            assert fast.chip_requests == slow.chip_requests
            assert fast.energy_joules == slow.energy_joules
            assert fast.num_batches == slow.num_batches
            assert fast.horizon_s == slow.horizon_s
            assert fast.latency_s.tobytes() == slow.latency_s.tobytes()
            assert fast.queue_delay_s.tobytes() == slow.queue_delay_s.tobytes()
            assert fast.telemetry == slow.telemetry
