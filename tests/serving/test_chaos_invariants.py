"""Invariant suite for chaos runs: resilience accounting must be provable.

Hypothesis generates adversarial request streams *and* seeded incident
timelines, and every pairing is served across all routers and batching
policies.  Four invariants must hold unconditionally under chaos:

* **Conservation** — ``arrived == completed + shed + lost``: every
  submitted request is accounted for exactly once, whatever the timeline
  kills.
* **Causality** — ``arrival <= dispatch <= finish`` for every completed
  request.
* **Down-interval exclusion** — no completed service span overlaps a
  chip's failure window (a batch may *finish* exactly at the failure
  instant; nothing dispatches before the recovery instant).
* **Scalar/vectorized identity** — ``vectorize=True`` and ``False``
  produce byte-identical records under the same timeline.

The zero-cost-when-off gate is pinned twice: an explicitly *empty*
timeline must be indistinguishable from no timeline at all on synthetic
streams, and must reproduce the pre-chaos golden records of every
recorded preset byte-for-byte.  Chunk-boundary tests mirror
``test_chunk_boundaries.py`` with incidents landing mid-chunk, and the
shard-fallback contract (timeline present ⇒ single-shard run, recorded
reason) is asserted on both ``run`` and ``run_stream``.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ExecutionCache
from repro.errors import ServingError
from repro.serving.batching import (
    ContinuousBatching,
    FixedSizeBatching,
    NoBatching,
)
from repro.serving.chaos import (
    OP_FAIL,
    OP_RECOVER,
    OP_SLOW_END,
    OP_SLOW_START,
    ChaosTimeline,
    Incident,
    chip_failure,
    power_cap,
    straggler,
)
from repro.serving.fleet import Fleet
from repro.serving.metrics import resilience_metrics, summarize_result
from repro.serving.scenarios import run_scenario
from repro.serving.simulator import (
    CHAOS_SHARD_FALLBACK,
    ServingSimulator,
    columnar_chunks,
)
from repro.serving.traffic import Request

WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")

ROUTERS = ("round_robin", "jsq", "affinity", "symbolic_affinity")

GOLDEN_DIR = Path(__file__).parent / "golden"

GOLDEN_SCENARIOS = (
    "steady", "diurnal", "flash_crowd", "mixed_workload", "ramp_surge",
)


class _Report:
    def __init__(self, symbolic_fraction):
        self.symbolic_fraction = symbolic_fraction


class ChaosFakeModel:
    """Deterministic service model covering every router's needs."""

    scheduler = "fake"
    cached_reports = 0

    BASE = {"lvrf": 0.8, "mimonet": 0.2, "nvsa": 1.0, "prae": 0.5}
    SYMBOLIC = {"lvrf": 0.9, "mimonet": 0.1, "nvsa": 0.8, "prae": 0.3}

    def service_seconds(self, workload, batch_size):
        return self.BASE[workload] * (0.05 + 0.05 * batch_size)

    def energy_joules(self, workload, batch_size):
        return self.service_seconds(workload, batch_size)

    def report(self, workload, batch_size):
        return _Report(self.SYMBOLIC[workload])


def _policies():
    return (
        NoBatching(),
        FixedSizeBatching(batch_size=3, max_wait_s=0.05),
        ContinuousBatching(max_batch_size=4, slo_s=0.5),
    )


#: arrivals on a 0.01 s grid so incident instants collide with arrivals,
#: wake-ups and completions, not just fall between them
request_streams = st.lists(
    st.tuples(
        st.sampled_from(WORKLOADS),
        st.integers(min_value=0, max_value=80),
    ),
    min_size=1,
    max_size=40,
).map(
    lambda entries: [
        Request(request_id=index, workload=workload, arrival_s=tick / 100.0)
        for index, (workload, tick) in enumerate(
            sorted(entries, key=lambda e: e[1])
        )
    ]
)

#: seeded storms (always valid timelines) with an optional power cap
chaos_timelines = st.builds(
    lambda seed, f_rate, s_rate, cap: ChaosTimeline(
        ChaosTimeline.seeded(
            seed, num_chips=3, horizon_s=1.0,
            failure_rate=f_rate, straggler_rate=s_rate,
            mean_duration_s=0.15, multiplier=3.0,
        ).incidents
        + ((power_cap(0.3, 0.2, 2.0),) if cap else ())
    ),
    seed=st.integers(0, 50),
    f_rate=st.sampled_from((0.0, 2.0, 6.0)),
    s_rate=st.sampled_from((0.0, 3.0)),
    cap=st.booleans(),
)


def _simulator(policy, router="jsq", num_chips=3, chaos=None, vectorize=True):
    return ServingSimulator(
        service_model=ChaosFakeModel(),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy,
        vectorize=vectorize,
        chaos=chaos,
    )


def _record_rows(result):
    return [
        [r.request_id, r.workload, r.chip, r.arrival_s, r.dispatch_s,
         r.finish_s, r.batch_size]
        for r in result.records
    ]


def _down_windows(timeline, num_chips):
    """Per chip: the (sorted, disjoint) failure windows of the timeline."""
    windows = {chip: [] for chip in range(num_chips)}
    for incident in timeline.incidents:
        if incident.kind == "chip_failure":
            windows[incident.chip].append((incident.at_s, incident.end_s))
    return {chip: sorted(spans) for chip, spans in windows.items()}


class TestChaosInvariants:
    @settings(max_examples=20, deadline=None)
    @given(stream=request_streams, chaos=chaos_timelines)
    def test_conservation_causality_down_exclusion(self, stream, chaos):
        for router in ROUTERS:
            for policy in _policies():
                sim = _simulator(policy, router=router, chaos=chaos)
                result = sim.run(list(stream))
                # Conservation: every submission is completed, shed or lost.
                assert (
                    len(result.records)
                    + result.requests_lost
                    + result.requests_shed
                    == len(stream)
                ), (router, policy.name)
                assert result.requests_arrived == len(stream)
                down = _down_windows(chaos, sim.fleet.num_chips)
                for record in result.records:
                    # Causality survives incident interruptions.
                    assert record.arrival_s <= record.dispatch_s
                    assert record.dispatch_s <= record.finish_s
                    # No completed span overlaps its chip's down window; a
                    # batch finishing exactly at the failure instant is the
                    # allowed boundary case.
                    for start, end in down[record.chip]:
                        assert (
                            record.finish_s <= start
                            or record.dispatch_s >= end
                        ), (router, policy.name, record, start, end)

    @settings(max_examples=15, deadline=None)
    @given(stream=request_streams, chaos=chaos_timelines)
    def test_scalar_and_vectorized_paths_agree_under_chaos(
        self, stream, chaos
    ):
        for router in ("jsq", "round_robin"):
            policy = ContinuousBatching(max_batch_size=4, slo_s=0.5)
            fast = _simulator(policy, router=router, chaos=chaos).run(
                list(stream)
            )
            slow = _simulator(
                policy, router=router, chaos=chaos, vectorize=False
            ).run(list(stream))
            assert _record_rows(fast) == _record_rows(slow)
            assert fast.requests_lost == slow.requests_lost
            assert fast.requests_shed == slow.requests_shed
            assert fast.incidents == slow.incidents
            assert fast.energy_joules == slow.energy_joules

    @settings(max_examples=15, deadline=None)
    @given(stream=request_streams)
    def test_empty_timeline_is_indistinguishable_from_none(self, stream):
        for router in ("jsq", "affinity"):
            policy = ContinuousBatching(max_batch_size=4, slo_s=0.5)
            bare = _simulator(policy, router=router)
            empty = _simulator(
                policy, router=router, chaos=ChaosTimeline(())
            )
            # The empty timeline normalizes away entirely...
            assert empty.chaos is None
            base = bare.run(list(stream))
            other = empty.run(list(stream))
            # ...so results and provenance are byte-identical.
            assert _record_rows(base) == _record_rows(other)
            assert base.requests_lost == other.requests_lost == 0
            assert base.incidents == other.incidents == ()
            assert "chaos" not in other.provenance
            assert base.provenance == other.provenance

    def test_lossy_outage_reports_losses_and_recovers(self):
        # A dense burst guarantees a busy chip and a standing queue when
        # the failure lands, so all three counters are exercised.
        stream = [
            Request(i, WORKLOADS[i % 4], 0.001 * i) for i in range(120)
        ]
        chaos = ChaosTimeline((chip_failure(0, 0.1, 0.3),))
        sim = _simulator(
            ContinuousBatching(max_batch_size=4), num_chips=2, chaos=chaos
        )
        result = sim.run(stream)
        assert result.requests_lost > 0
        assert result.requests_shed > 0
        assert result.requests_arrived == 120
        kinds = [event["kind"] for event in result.incidents]
        assert kinds.count("fail") == 1
        assert kinds.count("recover") == 1
        fail = next(e for e in result.incidents if e["kind"] == "fail")
        assert fail["requests_lost"] == result.requests_lost
        assert fail["requests_shed"] + sum(
            e.get("requests_shed", 0)
            for e in result.incidents if e["kind"] == "stranded"
        ) == result.requests_shed
        # Chip 0 serves again after the recovery instant.
        post = [r for r in result.records if r.chip == 0]
        assert any(r.dispatch_s >= 0.4 for r in post)

    def test_infinite_outage_strands_the_queue(self):
        stream = [Request(i, "nvsa", 0.001 * i) for i in range(40)]
        chaos = ChaosTimeline((chip_failure(0, 0.02, math.inf),))
        sim = _simulator(
            ContinuousBatching(max_batch_size=4), num_chips=1, chaos=chaos
        )
        result = sim.run(stream)
        # Nothing ever dispatches after the failure instant...
        assert all(r.finish_s <= 0.02 for r in result.records)
        # ...and conservation still holds: the stranded queue is shed.
        assert (
            len(result.records) + result.requests_lost + result.requests_shed
            == 40
        )
        assert result.requests_shed > 0
        assert any(e["kind"] == "stranded" for e in result.incidents)


class TestChaosChunkBoundaries:
    """Mid-chunk incidents must not depend on where chunks split."""

    STREAM = [
        Request(i, WORKLOADS[i % 4], (i * 37 % 499) / 4990.0)
        for i in range(60)
    ]
    CHAOS = ChaosTimeline((
        chip_failure(1, 0.03, 0.02),
        straggler(0, 0.01, 0.05, 3.0),
        power_cap(0.06, 0.03, 2.0),
    ))

    def _sim(self):
        return _simulator(
            ContinuousBatching(max_batch_size=4), num_chips=2,
            chaos=self.CHAOS,
        )

    @pytest.mark.parametrize("chunk_size", (1, 3, 7, 64))
    def test_chunk_size_invariance_under_chaos(self, chunk_size):
        stream = sorted(self.STREAM, key=lambda r: r.arrival_s)
        sim = self._sim()
        base = sim.run_stream(
            columnar_chunks(stream, len(stream)), WORKLOADS
        )
        chunked = sim.run_stream(
            columnar_chunks(stream, chunk_size), WORKLOADS
        )
        assert np.array_equal(
            chunked.latency_values(), base.latency_values()
        )
        assert chunked.chip_busy_s == base.chip_busy_s
        assert chunked.num_requests == base.num_requests
        assert chunked.requests_lost == base.requests_lost
        assert chunked.requests_shed == base.requests_shed
        assert chunked.incidents == base.incidents
        assert chunked.horizon_s == base.horizon_s

    def test_stream_matches_full_trace_run(self):
        stream = sorted(self.STREAM, key=lambda r: r.arrival_s)
        full = self._sim().run(stream)
        streamed = self._sim().run_stream(
            columnar_chunks(stream, 5), WORKLOADS
        )
        assert streamed.num_requests == full.num_requests
        assert streamed.requests_lost == full.requests_lost
        assert streamed.requests_shed == full.requests_shed
        assert streamed.incidents == full.incidents
        assert streamed.horizon_s == full.horizon_s
        assert np.array_equal(
            np.sort(streamed.latency_values()),
            np.sort(full.latency_values()),
        )

    def test_empty_chunks_are_skipped_under_chaos(self):
        stream = sorted(self.STREAM, key=lambda r: r.arrival_s)
        sim = self._sim()
        base = sim.run_stream(
            columnar_chunks(stream, len(stream)), WORKLOADS
        )
        chunks = [([], [], [])]
        for chunk in columnar_chunks(stream, 4):
            chunks.extend([chunk, ([], [], [])])
        padded = sim.run_stream(iter(chunks), WORKLOADS)
        assert np.array_equal(
            padded.latency_values(), base.latency_values()
        )
        assert padded.requests_lost == base.requests_lost
        assert padded.requests_shed == base.requests_shed


class TestShardFallback:
    """A chaos timeline forces single-shard execution, with the reason."""

    STREAM = [
        Request(i, WORKLOADS[i % 4], 0.002 * i) for i in range(50)
    ]
    CHAOS = ChaosTimeline((chip_failure(0, 0.02, 0.03),))

    def test_run_falls_back_and_records_why(self):
        sim = _simulator(
            ContinuousBatching(max_batch_size=4), router="round_robin",
            num_chips=2, chaos=self.CHAOS,
        )
        single = sim.run(list(self.STREAM))
        sharded = sim.run(list(self.STREAM), shards=2)
        assert sharded.provenance["shards"] == 2
        assert sharded.provenance["shards_effective"] == 1
        assert sharded.provenance["shard_fallback"] == CHAOS_SHARD_FALLBACK
        assert _record_rows(sharded) == _record_rows(single)
        assert sharded.requests_lost == single.requests_lost
        assert sharded.requests_shed == single.requests_shed

    def test_run_stream_falls_back_and_records_why(self):
        sim = _simulator(
            ContinuousBatching(max_batch_size=4), router="round_robin",
            num_chips=2, chaos=self.CHAOS,
        )
        stream = sorted(self.STREAM, key=lambda r: r.arrival_s)
        single = sim.run_stream(columnar_chunks(stream, 8), WORKLOADS)
        sharded = sim.run_stream(
            columnar_chunks(stream, 8), WORKLOADS, shards=2
        )
        assert sharded.provenance["shards"] == 2
        assert sharded.provenance["shards_effective"] == 1
        assert sharded.provenance["shard_fallback"] == CHAOS_SHARD_FALLBACK
        assert np.array_equal(
            sharded.latency_values(), single.latency_values()
        )

    def test_chaos_free_sharding_is_untouched(self):
        sim = _simulator(
            ContinuousBatching(max_batch_size=4), router="round_robin",
            num_chips=2,
        )
        result = sim.run(list(self.STREAM), shards=2)
        assert result.provenance["shards"] == 2
        assert "shard_fallback" not in result.provenance


class TestTimelineValidation:
    def test_incident_kinds_are_checked(self):
        with pytest.raises(ServingError, match="unknown incident kind"):
            Incident("meteor", 0.0, 1.0, chip=0)

    def test_start_must_be_finite_and_nonnegative(self):
        with pytest.raises(ServingError, match="finite"):
            chip_failure(0, -1.0, 1.0)
        with pytest.raises(ServingError, match="finite"):
            chip_failure(0, math.inf, 1.0)
        with pytest.raises(ServingError, match="finite"):
            chip_failure(0, math.nan, 1.0)

    def test_duration_must_be_positive_but_may_be_infinite(self):
        with pytest.raises(ServingError, match="duration"):
            chip_failure(0, 0.0, 0.0)
        with pytest.raises(ServingError, match="duration"):
            straggler(0, 0.0, -1.0, 2.0)
        assert chip_failure(0, 0.0, math.inf).end_s == math.inf

    def test_kind_specific_fields_are_enforced(self):
        with pytest.raises(ServingError, match="fleet-wide"):
            Incident("power_cap", 0.0, 1.0, chip=2, multiplier=2.0)
        with pytest.raises(ServingError, match="chip id"):
            Incident("chip_failure", 0.0, 1.0, chip=None)
        with pytest.raises(ServingError, match="no"):
            Incident("chip_failure", 0.0, 1.0, chip=0, multiplier=2.0)
        with pytest.raises(ServingError, match="multiplier"):
            Incident("straggler", 0.0, 1.0, chip=0)
        with pytest.raises(ServingError, match="multiplier"):
            Incident("straggler", 0.0, 1.0, chip=0, multiplier=0.0)

    def test_overlapping_failures_on_one_chip_are_rejected(self):
        with pytest.raises(ServingError, match="overlapping"):
            ChaosTimeline((
                chip_failure(1, 0.0, 1.0),
                chip_failure(1, 0.5, 1.0),
            ))
        # Touching windows and different chips are fine.
        ChaosTimeline((chip_failure(1, 0.0, 0.5), chip_failure(1, 0.5, 0.5)))
        ChaosTimeline((chip_failure(0, 0.0, 1.0), chip_failure(1, 0.5, 1.0)))

    def test_non_incident_entries_are_rejected(self):
        with pytest.raises(ServingError, match="Incident"):
            ChaosTimeline(({"kind": "chip_failure"},))

    def test_compile_rejects_out_of_range_chips(self):
        timeline = ChaosTimeline((chip_failure(3, 0.0, 1.0),))
        assert timeline.max_chip == 3
        with pytest.raises(ServingError, match="fleet has"):
            timeline.compile(2)
        with pytest.raises(ServingError, match="fleet has"):
            ServingSimulator(
                service_model=ChaosFakeModel(),
                fleet=Fleet(num_chips=2, router="round_robin"),
                chaos=timeline,
            )


class TestTimelineMechanics:
    def test_compile_orders_events_and_fans_out_power_caps(self):
        timeline = ChaosTimeline((
            power_cap(0.5, 0.5, 2.0),
            chip_failure(0, 0.5, 0.25),
            straggler(1, 0.1, 0.2, 4.0),
        ))
        events = timeline.compile(2)
        assert events == sorted(events, key=lambda e: (e[0], e[1], e[2]))
        ops = [op for _, op, _, _ in events]
        # power_cap fans out to one slow window per chip.
        assert ops.count(OP_SLOW_START) == 3
        assert ops.count(OP_SLOW_END) == 3
        assert ops.count(OP_FAIL) == 1
        assert ops.count(OP_RECOVER) == 1
        # Failure sorts before the slow-start at the shared instant.
        at_half = [op for t, op, _, _ in events if t == 0.5]
        assert at_half[0] == OP_FAIL

    def test_infinite_incidents_emit_no_closing_event(self):
        timeline = ChaosTimeline((chip_failure(0, 0.1, math.inf),))
        events = timeline.compile(1)
        assert [op for _, op, _, _ in events] == [OP_FAIL]

    def test_scaled_stretches_starts_and_durations(self):
        timeline = ChaosTimeline((
            chip_failure(0, 1.0, 2.0), straggler(1, 0.5, 1.0, 3.0),
        ))
        scaled = timeline.scaled(0.5)
        assert scaled.incidents[0].at_s == 0.5
        assert scaled.incidents[0].duration_s == 1.0
        assert scaled.incidents[1].multiplier == 3.0
        assert timeline.scaled(1.0) is timeline
        with pytest.raises(ServingError, match="positive"):
            timeline.scaled(0.0)

    def test_json_round_trip(self, tmp_path):
        timeline = ChaosTimeline((
            chip_failure(0, 0.25, 0.5),
            straggler(1, 0.1, 0.2, 4.0),
            power_cap(0.8, 0.1, 2.0),
        ))
        path = timeline.dump(tmp_path / "chaos.json")
        assert ChaosTimeline.load(path) == timeline
        assert ChaosTimeline.from_dict(
            json.loads(timeline.to_json())
        ) == timeline

    def test_malformed_json_fails_loudly(self, tmp_path):
        with pytest.raises(ServingError, match="incidents"):
            ChaosTimeline.from_dict({"events": []})
        with pytest.raises(ServingError, match="unknown incident fields"):
            ChaosTimeline.from_dict(
                {"incidents": [{"kind": "power_cap", "at_s": 0.0,
                                "duration_s": 1.0, "multiplier": 2.0,
                                "severity": "high"}]}
            )
        with pytest.raises(ServingError, match="missing field"):
            ChaosTimeline.from_dict(
                {"incidents": [{"kind": "chip_failure", "chip": 0}]}
            )
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ServingError, match="cannot read"):
            ChaosTimeline.load(bad)

    def test_seeded_storms_are_deterministic_and_valid(self):
        first = ChaosTimeline.seeded(
            11, num_chips=3, horizon_s=2.0,
            failure_rate=2.0, straggler_rate=3.0,
        )
        second = ChaosTimeline.seeded(
            11, num_chips=3, horizon_s=2.0,
            failure_rate=2.0, straggler_rate=3.0,
        )
        assert first == second
        assert first.incidents  # these rates always produce incidents
        other = ChaosTimeline.seeded(
            12, num_chips=3, horizon_s=2.0,
            failure_rate=2.0, straggler_rate=3.0,
        )
        assert first != other
        with pytest.raises(ServingError, match="num_chips"):
            ChaosTimeline.seeded(0, num_chips=0, horizon_s=1.0)
        with pytest.raises(ServingError, match="horizon"):
            ChaosTimeline.seeded(0, num_chips=1, horizon_s=0.0)


@pytest.fixture(scope="module")
def shared_model():
    """One memoized execution cache shared by every golden replay."""
    return ExecutionCache()


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
class TestEmptyTimelineGoldenEquivalence:
    """Zero-cost-when-off: an explicit empty timeline replays the goldens.

    ``test_differential.py`` pins the no-timeline path against the
    pre-chaos goldens; this pins the *other* way into the chaos layer —
    an empty ``--chaos`` document must not perturb a single timestamp.
    """

    def test_empty_timeline_reproduces_golden_records(
        self, name, shared_model
    ):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        _, result = run_scenario(
            name,
            seed=golden["seed"],
            load_scale=golden["load_scale"],
            duration_scale=golden["duration_scale"],
            service_model=shared_model,
            chaos=ChaosTimeline(()),
        )
        assert _record_rows(result) == golden["records"]
        assert result.energy_joules == golden["energy_joules"]
        assert result.horizon_s == golden["horizon_s"]
        assert result.requests_lost == 0
        assert result.requests_shed == 0
        assert result.incidents == ()
        assert "chaos" not in result.provenance
        assert "shard_fallback" not in result.provenance


class TestResilienceMetrics:
    def test_arguments_are_validated(self):
        sim = _simulator(NoBatching(), num_chips=1)
        result = sim.run([Request(0, "nvsa", 0.0)])
        with pytest.raises(ServingError, match="window_s"):
            resilience_metrics(result, window_s=0.0)
        with pytest.raises(ServingError, match="tolerance"):
            resilience_metrics(result, tolerance=0.5)

    def test_chaos_free_run_reports_counts_only(self):
        sim = _simulator(NoBatching(), num_chips=1)
        result = sim.run([Request(i, "nvsa", 0.01 * i) for i in range(5)])
        out = resilience_metrics(result)
        assert out["incidents"] == 0
        assert out["requests_arrived"] == 5
        assert out["requests_lost"] == 0
        assert out["pre_incident_p95_ms"] is None
        assert out["recovery_time_s"] is None

    def test_chip_outage_preset_has_losses_and_finite_recovery(self):
        """Acceptance: chip_outage reports non-zero losses and recovers."""
        scenario, result = run_scenario("chip_outage", duration_scale=0.2)
        out = resilience_metrics(result)
        assert out["requests_lost"] > 0
        assert out["requests_shed"] > 0
        assert (
            out["requests_completed"] + out["requests_lost"]
            + out["requests_shed"] == out["requests_arrived"]
        )
        assert out["recovery_time_s"] is not None
        assert math.isfinite(out["recovery_time_s"])
        assert out["tail_inflation_x"] > 1.0
        # The summary row surfaces the same conservation counters.
        row = summarize_result(result, scenario.slo_s)
        assert row["requests_lost"] == out["requests_lost"]
        assert row["requests_shed"] == out["requests_shed"]
        assert row["requests_arrived"] == out["requests_arrived"]

    def test_never_recovering_outage_reports_infinite_recovery(self):
        # Infinite-duration failure: the tail never re-converges, so the
        # metric must say "never recovered" (inf), not None (no baseline).
        sim = _simulator(
            NoBatching(), num_chips=2,
            chaos=ChaosTimeline((chip_failure(0, 0.3, float("inf")),)),
        )
        result = sim.run(
            [Request(i, "nvsa", 0.01 * i) for i in range(40)]
        )
        out = resilience_metrics(result)
        assert out["pre_incident_p95_ms"] is not None
        assert out["recovery_time_s"] == float("inf")
        assert not math.isfinite(out["recovery_time_s"])

    def test_streamed_results_report_counts_without_percentiles(self):
        stream = sorted(
            [Request(i, "nvsa", 0.001 * i) for i in range(60)],
            key=lambda r: r.arrival_s,
        )
        sim = _simulator(
            ContinuousBatching(max_batch_size=4), num_chips=2,
            chaos=ChaosTimeline((chip_failure(0, 0.02, 0.05),)),
        )
        result = sim.run_stream(columnar_chunks(stream, 8), ("nvsa",))
        out = resilience_metrics(result)
        assert out["incidents"] == len(result.incidents)
        assert out["requests_arrived"] == 60
        assert out["pre_incident_p95_ms"] is None
        assert out["during_p95_ms"] is None
        assert out["recovery_time_s"] is None

    def test_summary_row_shape_is_unchanged_without_chaos(self):
        sim = _simulator(NoBatching(), num_chips=1)
        result = sim.run([Request(i, "nvsa", 0.01 * i) for i in range(5)])
        row = summarize_result(result, 1.0)
        assert "requests_lost" not in row
        assert "requests_arrived" not in row
