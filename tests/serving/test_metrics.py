"""Tests for the serving metrics layer."""

import pytest

from repro.errors import ServingError
from repro.serving.metrics import (
    goodput,
    latency_summary,
    per_workload_summary,
    percentile,
    queueing_summary,
    saturation_summary,
    summarize_result,
)
from repro.serving.simulator import RequestRecord, ServingResult


def _record(request_id=0, workload="nvsa", chip=0, arrival=0.0, dispatch=0.0,
            finish=1.0, batch_size=1):
    return RequestRecord(
        request_id=request_id,
        workload=workload,
        chip=chip,
        arrival_s=arrival,
        dispatch_s=dispatch,
        finish_s=finish,
        batch_size=batch_size,
    )


def _result(records, num_chips=1, busy=None, energy=1.0, batches=None):
    return ServingResult(
        records=tuple(records),
        num_chips=num_chips,
        chip_busy_s=tuple(busy or [1.0] * num_chips),
        chip_requests=(len(records),) + (0,) * (num_chips - 1),
        energy_joules=energy,
        num_batches=batches if batches is not None else len(records),
        horizon_s=max(record.finish_s for record in records),
        first_arrival_s=min(record.arrival_s for record in records),
    )


class TestPercentile:
    def test_interpolated_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_bounds_and_empty_rejected(self):
        with pytest.raises(ServingError):
            percentile([1.0], 101)
        with pytest.raises(ServingError):
            percentile([], 50)


class TestSummaries:
    def test_latency_summary_values(self):
        records = [
            _record(request_id=i, arrival=0.0, dispatch=0.0, finish=(i + 1) / 1000)
            for i in range(4)
        ]
        summary = latency_summary(records)
        assert summary["count"] == 4
        assert summary["p50_ms"] == pytest.approx(2.5)
        assert summary["max_ms"] == pytest.approx(4.0)
        assert summary["mean_ms"] == pytest.approx(2.5)

    def test_queueing_summary_values(self):
        records = [
            _record(request_id=0, dispatch=0.002, finish=0.003),
            _record(request_id=1, dispatch=0.004, finish=0.005),
        ]
        assert queueing_summary(records)["mean_queue_ms"] == pytest.approx(3.0)

    def test_empty_records_rejected(self):
        with pytest.raises(ServingError):
            latency_summary([])
        with pytest.raises(ServingError):
            queueing_summary([])


class TestGoodput:
    def test_counts_only_slo_met_requests(self):
        records = [
            _record(request_id=0, finish=0.001),
            _record(request_id=1, finish=0.010),
        ]
        result = goodput(records, slo_s=0.005, span_s=2.0)
        assert result["slo_attainment"] == pytest.approx(0.5)
        assert result["goodput_rps"] == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ServingError):
            goodput([_record()], slo_s=0.0, span_s=1.0)
        with pytest.raises(ServingError):
            goodput([], slo_s=0.005, span_s=1.0)


class TestSummarizeResult:
    def test_flat_row_has_the_dashboard_fields(self):
        result = _result([_record(finish=0.001)])
        row = summarize_result(result, slo_s=0.005, offered_rps=100.0)
        for key in (
            "requests", "num_chips", "throughput_rps", "p50_ms", "p99_ms",
            "mean_queue_ms", "slo_attainment", "goodput_rps", "mean_batch",
            "utilization", "energy_mj_per_request", "offered_rps",
        ):
            assert key in row
        assert "count" not in row

    def test_per_workload_breakdown_groups_and_sorts(self):
        records = [
            _record(request_id=0, workload="prae", finish=0.001),
            _record(request_id=1, workload="lvrf", finish=0.002),
            _record(request_id=2, workload="prae", finish=0.003),
        ]
        rows = per_workload_summary(_result(records), slo_s=0.005)
        assert [row["workload"] for row in rows] == ["lvrf", "prae"]
        assert rows[1]["count"] == 2


class TestCrossPathSummaries:
    """The full-trace and streamed result paths must summarize identically.

    Both :class:`ServingResult` and :class:`StreamedServingResult` funnel
    through ``_latency_summary_values``; this pins the whole summary row —
    every percentile included — so a future divergence (e.g. a path-local
    percentile method) fails loudly instead of drifting the dashboards.
    """

    def test_run_and_run_stream_summaries_are_identical(self):
        from repro.serving.batching import build_policy
        from repro.serving.fleet import Fleet
        from repro.serving.scenarios import get_scenario
        from repro.serving.simulator import ServingSimulator, columnar_chunks

        scenario = get_scenario("steady")
        requests = scenario.traffic(0, 0.3, 0.2)
        sim = ServingSimulator(
            fleet=Fleet(num_chips=scenario.num_chips, router=scenario.router),
            batching_policy=build_policy(scenario.policy),
        )
        full = sim.run(requests)
        workloads = sorted({request.workload for request in requests})
        streamed = sim.run_stream(columnar_chunks(requests, 256), workloads)
        assert summarize_result(full, scenario.slo_s) == summarize_result(
            streamed, scenario.slo_s
        )
        assert per_workload_summary(full, scenario.slo_s) == (
            per_workload_summary(streamed, scenario.slo_s)
        )


class TestSaturationSummary:
    ROWS = [
        {"load": 0.2, "p99_ms": 1.0},
        {"load": 0.5, "p99_ms": 1.2},
        {"load": 0.8, "p99_ms": 2.0},
        {"load": 1.1, "p99_ms": 9.0},
    ]

    def test_finds_the_knee(self):
        summary = saturation_summary(self.ROWS)
        assert summary["knee_load"] == 1.1
        assert summary["base_latency_ms"] == 1.0
        assert summary["peak_load"] == 1.1

    def test_no_knee_when_latency_stays_flat(self):
        flat = [{"load": load, "p99_ms": 1.0} for load in (0.2, 0.5)]
        assert saturation_summary(flat)["knee_load"] is None

    def test_empty_rows_rejected(self):
        with pytest.raises(ServingError):
            saturation_summary([])
