"""Tests for the parallel suite runner, the coupled benchmark suite and
the depth-bucket JSQ index.

The equality tests pin the suite runner's contract: results come back in
input order and are byte-identical whether the cases ran sequentially or
through the process pool — except ``provenance["cached_reports"]``,
which counts the worker's service-table memo warmth and legitimately
depends on which cases that worker ran first (documented in
:mod:`repro.serving.suite`).
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError, ServingError
from repro.serving.benchmark import (
    COUPLED_SUITE,
    CoupledThroughputCase,
    measure_coupled_case,
)
from repro.serving.simulator import _DepthIndex
from repro.serving.suite import SuiteCase, SuiteResult, map_cases, run_suite


class TestRunSuite:
    def test_results_in_input_order_and_pool_identical(self):
        cases = [
            SuiteCase("steady", duration_scale=0.2),
            SuiteCase("flash_crowd", duration_scale=0.2),
            SuiteCase("steady", seed=7, duration_scale=0.2, label="reseeded"),
        ]
        sequential = run_suite(cases, jobs=1)
        pooled = run_suite(cases, jobs=2)
        assert [res.case for res in sequential] == cases
        for seq, par in zip(sequential, pooled):
            assert isinstance(seq, SuiteResult)
            assert seq.case == par.case
            assert seq.scenario == par.scenario
            assert seq.num_requests == par.num_requests
            assert seq.summary == par.summary
            assert seq.per_workload == par.per_workload
            assert seq.per_backend == par.per_backend
            prov_seq = dict(seq.provenance)
            prov_par = dict(par.provenance)
            prov_seq.pop("cached_reports")
            prov_par.pop("cached_reports")
            assert prov_seq == prov_par

    def test_jsq_cases_record_the_coupled_engine(self):
        [result] = run_suite([SuiteCase("steady", duration_scale=0.2)])
        assert result.provenance["coupled_engine"] == "water_fill"
        assert result.slo_s == pytest.approx(5e-3)

    def test_case_overrides_flow_through(self):
        [result] = run_suite(
            [SuiteCase("steady", duration_scale=0.2, num_chips=3,
                       router="round_robin", policy="none")]
        )
        assert result.provenance["num_chips"] == 3
        assert result.provenance["router"] == "round_robin"
        assert result.provenance["batching_policy"] == "none"
        assert "coupled_engine" not in result.provenance

    def test_label_defaults_to_scenario(self):
        assert SuiteCase("steady").name == "steady"
        assert SuiteCase("steady", label="warm").name == "warm"

    def test_empty_suite(self):
        assert run_suite([]) == []

    def test_rejects_non_cases_and_bad_jobs(self):
        with pytest.raises(ServingError, match="SuiteCase"):
            run_suite(["steady"])
        with pytest.raises(ServingError, match="jobs"):
            run_suite([SuiteCase("steady")], jobs=0)

    def test_unknown_scenario_raises_in_worker(self):
        with pytest.raises(ServingError, match="unknown scenario"):
            run_suite([SuiteCase("nope", duration_scale=0.2)])


def _double(value):
    return value * 2


class TestMapCases:
    def test_sequential_and_pooled_agree(self):
        items = list(range(5))
        assert map_cases(_double, items, jobs=1) == [0, 2, 4, 6, 8]
        assert map_cases(_double, items, jobs=3) == [0, 2, 4, 6, 8]

    def test_jobs_clamped_to_item_count(self):
        assert map_cases(_double, [21], jobs=64) == [42]


class TestServeJobsCli:
    def test_suite_json_payload(self, capsys):
        assert main([
            "serve", "steady,flash_crowd", "--jobs", "2",
            "--duration-scale", "0.2", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["scenario"] for entry in payload] == [
            "steady", "flash_crowd",
        ]
        for entry in payload:
            assert entry["provenance"]["coupled_engine"] == "water_fill"
            assert entry["summary"]["requests"] > 0

    def test_single_scenario_with_jobs_uses_the_suite_path(self, capsys):
        assert main([
            "serve", "flash_crowd", "--jobs", "2",
            "--duration-scale", "0.2", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["scenario"] == "flash_crowd"

    @pytest.mark.parametrize("argv", [
        ["serve", "steady", "--jobs", "0"],
        ["serve", "steady", "--jobs", "2", "--shards", "2"],
        ["serve", "steady", "--jobs", "2", "--profile"],
        ["serve", "steady,flash_crowd", "--telemetry", "t.jsonl"],
        ["serve", "--smoke", "--jobs", "2"],
    ])
    def test_stray_combinations_rejected(self, argv, capsys):
        assert main(argv) == 2


class TestCoupledBenchmark:
    def test_suite_regimes_are_deeply_saturated_jsq(self):
        assert len(COUPLED_SUITE) >= 3
        for case in COUPLED_SUITE:
            assert case.load_scale >= 64.0
            assert case.num_chips >= 2

    def test_measure_coupled_case_smoke(self):
        case = CoupledThroughputCase(
            label="smoke", scenario="steady", load_scale=8.0,
            duration_scale=0.1, num_chips=2, max_batch_size=32,
        )
        row = measure_coupled_case(case, repeats=1)
        assert row["label"] == "smoke"
        assert row["router"] == "jsq"
        assert row["num_chips"] == 2
        assert row["requests"] > 0
        assert row["requests_per_s"] > 0
        # Deepish saturation: most requests ride the water-fill spans.
        assert row["water_fill_requests"] > row["requests"] // 2


class _FakeChip:
    __slots__ = ("chip_id", "pending")

    def __init__(self, chip_id, pending):
        self.chip_id = chip_id
        self.pending = pending


class TestDepthIndex:
    """The bucket index must reproduce the linear min-scan's exact order."""

    @staticmethod
    def _reference_take(chips):
        best = min(chips, key=lambda chip: (chip.pending, chip.chip_id))
        best.pending += 1
        return best.chip_id

    def test_take_matches_linear_min_scan(self):
        depths = [3, 1, 4, 1, 5, 9, 2, 6]
        chips = [_FakeChip(i, d) for i, d in enumerate(depths)]
        mirror = [_FakeChip(i, d) for i, d in enumerate(depths)]
        index = _DepthIndex(chips)
        for _ in range(50):
            taken = index.take()
            taken.pending += 1
            assert taken.chip_id == self._reference_take(mirror)

    def test_move_refiles_after_completion(self):
        chips = [_FakeChip(0, 5), _FakeChip(1, 5), _FakeChip(2, 5)]
        index = _DepthIndex(chips)
        # Chip 2 drains below the others: it must win the next take.
        chips[2].pending = 1
        index.move(2, 5, 1)
        assert index.take().chip_id == 2
        # Ties resolve to the lower chip id, as the scalar scan does.
        chips[2].pending += 1
        chips[0].pending = 1
        index.move(0, 5, 1)
        chips[1].pending = 1
        index.move(1, 5, 1)
        assert index.take().chip_id == 0

    def test_rebuild_resets_to_current_depths(self):
        chips = [_FakeChip(0, 2), _FakeChip(1, 0)]
        index = _DepthIndex(chips)
        index.take()
        chips[0].pending = 0
        chips[1].pending = 7
        index.rebuild()
        assert index.take().chip_id == 0
