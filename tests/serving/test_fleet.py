"""Tests for the fleet model: service-time memoization and routing."""

from dataclasses import dataclass

import pytest

from repro.backends import cache as cache_module
from repro.errors import ServingError
from repro.serving.fleet import (
    AcceleratorServiceModel,
    Fleet,
    JoinShortestQueueRouter,
    RoundRobinRouter,
    WorkloadAffinityRouter,
    build_router,
)
from repro.serving.traffic import Request


@dataclass
class StubChip:
    chip_id: int
    busy: bool = False
    inflight: int = 0
    queue_depth: int = 0


def _request(workload="nvsa"):
    return Request(request_id=0, workload=workload, arrival_s=0.0)


class TestAcceleratorServiceModel:
    def test_reports_are_memoized(self, monkeypatch):
        calls = []
        real_build = cache_module.build_workload
        monkeypatch.setattr(
            cache_module,
            "build_workload",
            lambda name, **kwargs: calls.append(name) or real_build(name, **kwargs),
        )
        model = AcceleratorServiceModel()
        first = model.service_seconds("mimonet", 2)
        second = model.service_seconds("mimonet", 2)
        assert first == second
        assert calls == ["mimonet"]
        assert model.cached_reports == 1

    def test_batching_amortizes_per_request_cost(self):
        # NVSA's adaptive schedule interleaves the tasks of a batch across
        # cells, so a batch of 4 costs clearly less than 4 single launches.
        model = AcceleratorServiceModel()
        single = model.service_seconds("nvsa", 1)
        batched = model.service_seconds("nvsa", 4)
        assert single < batched < 4 * single

    def test_energy_scales_with_service_time(self):
        model = AcceleratorServiceModel()
        assert model.energy_joules("mimonet", 2) > model.energy_joules("mimonet", 1)

    def test_invalid_batch_size_rejected(self):
        # The memo cache moved into the backend layer, but the deprecated
        # shim keeps its historical ServingError contract.
        with pytest.raises(ServingError):
            AcceleratorServiceModel().service_seconds("mimonet", 0)


class TestRoundRobinRouter:
    def test_cycles_through_chips(self):
        router = RoundRobinRouter()
        chips = [StubChip(chip_id) for chip_id in range(3)]
        routed = [router.route(_request(), chips) for _ in range(6)]
        assert routed == [0, 1, 2, 0, 1, 2]


class TestJoinShortestQueueRouter:
    def test_picks_least_pending_chip(self):
        router = JoinShortestQueueRouter()
        chips = [
            StubChip(0, queue_depth=3),
            StubChip(1, queue_depth=1),
            StubChip(2, queue_depth=2),
        ]
        assert router.route(_request(), chips) == 1

    def test_inflight_requests_count_as_pending(self):
        router = JoinShortestQueueRouter()
        chips = [StubChip(0, busy=True, inflight=4), StubChip(1, queue_depth=2)]
        assert router.route(_request(), chips) == 1

    def test_ties_break_to_lowest_chip_id(self):
        router = JoinShortestQueueRouter()
        chips = [StubChip(0), StubChip(1)]
        assert router.route(_request(), chips) == 0


class TestWorkloadAffinityRouter:
    WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")

    def test_shards_cover_every_chip_when_fleet_is_larger(self):
        router = WorkloadAffinityRouter(8, self.WORKLOADS)
        owned = sorted(chip for owners in router.owners.values() for chip in owners)
        assert owned == list(range(8))
        assert all(len(owners) == 2 for owners in router.owners.values())

    def test_small_fleet_shares_chips(self):
        router = WorkloadAffinityRouter(2, self.WORKLOADS)
        assert all(owners for owners in router.owners.values())
        assert all(
            chip in (0, 1) for owners in router.owners.values() for chip in owners
        )

    def test_routes_only_to_owning_chips(self):
        router = WorkloadAffinityRouter(4, self.WORKLOADS)
        chips = [StubChip(chip_id) for chip_id in range(4)]
        for workload in self.WORKLOADS:
            chosen = router.route(_request(workload), chips)
            assert chosen in router.owners[workload]

    def test_least_loaded_owner_wins(self):
        router = WorkloadAffinityRouter(8, self.WORKLOADS)
        owners = router.owners["lvrf"]
        chips = [StubChip(chip_id) for chip_id in range(8)]
        chips[owners[0]].queue_depth = 5
        assert router.route(_request("lvrf"), chips) == owners[1]

    def test_unknown_workload_rejected(self):
        router = WorkloadAffinityRouter(2, ("nvsa",))
        with pytest.raises(ServingError, match="no shard"):
            router.route(_request("prae"), [StubChip(0), StubChip(1)])

    def test_invalid_construction_rejected(self):
        with pytest.raises(ServingError):
            WorkloadAffinityRouter(0, self.WORKLOADS)
        with pytest.raises(ServingError):
            WorkloadAffinityRouter(2, ())


class TestFleet:
    def test_defaults_and_router_construction(self):
        fleet = Fleet()
        assert fleet.num_chips == 1
        assert isinstance(fleet.make_router(("nvsa",)), RoundRobinRouter)
        assert isinstance(
            Fleet(num_chips=2, router="jsq").make_router(("nvsa",)),
            JoinShortestQueueRouter,
        )
        affinity = Fleet(num_chips=2, router="affinity").make_router(("nvsa", "prae"))
        assert isinstance(affinity, WorkloadAffinityRouter)

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ServingError):
            Fleet(num_chips=0)
        with pytest.raises(ServingError):
            Fleet(router="bogus")
        with pytest.raises(ServingError):
            build_router("bogus", 2, ("nvsa",))
