"""Tests for the windowed telemetry layer, its exporters and the CLI flags.

The load-bearing guarantee is byte-identity: the full-trace (``run``),
streamed (``run_stream``) and sharded paths must produce *equal* window
rows for the same request stream — every float included.  Hypothesis
drives that over adversarial streams; golden JSONL snapshots pin the
exported bytes for two presets.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ServingError
from repro.serving.batching import ContinuousBatching, NoBatching
from repro.serving.exporters import (
    TELEMETRY_FORMAT,
    render_dashboard,
    to_prometheus,
    write_jsonl,
    write_spans_jsonl,
)
from repro.serving.fleet import Fleet
from repro.serving.simulator import ServingSimulator, columnar_chunks
from repro.serving.telemetry import (
    SPAN_FIELDS,
    TELEMETRY_FIELDS,
    derive_series,
    request_spans,
)
from repro.serving.traffic import Request

WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")

#: window width used throughout — coarse enough for multi-window runs,
#: fine enough to exercise batch-spans-window accounting
WINDOW_S = 0.5


class TelemetryFakeModel:
    """Deterministic per-workload service model (1 W chip: energy == busy)."""

    scheduler = "fake"
    cached_reports = 0

    BASE = {"lvrf": 0.8, "mimonet": 0.2, "nvsa": 1.0, "prae": 0.5}

    def service_seconds(self, workload, batch_size):
        return self.BASE[workload] * (0.5 + 0.5 * batch_size)

    def energy_joules(self, workload, batch_size):
        return self.service_seconds(workload, batch_size)


#: adversarial request streams on a 0.1 s grid (simultaneous arrivals,
#: duplicate instants), same shape as the invariant harness uses
request_streams = st.lists(
    st.tuples(
        st.sampled_from(WORKLOADS),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=40,
).map(
    lambda entries: [
        Request(request_id=index, workload=workload, arrival_s=tick / 10.0)
        for index, (workload, tick) in enumerate(
            sorted(entries, key=lambda e: e[1])
        )
    ]
)


def _simulator(num_chips, router="round_robin", policy=None):
    return ServingSimulator(
        service_model=TelemetryFakeModel(),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy or ContinuousBatching(max_batch_size=4, slo_s=2.0),
    )


class TestWindowConservation:
    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams, num_chips=st.integers(1, 3))
    def test_per_window_counts_conserve_totals(self, stream, num_chips):
        sim = _simulator(num_chips)
        result = sim.run(stream, telemetry_window_s=WINDOW_S)
        series = result.telemetry
        assert series.requests == len(stream)
        assert series.completed == len(stream)
        assert sum(series.column("batches")) == result.num_batches
        assert sum(series.column("shed")) == 0
        # Windows tile [first arrival window, horizon window] contiguously.
        windows = series.column("window")
        assert windows == list(range(windows[0], windows[0] + len(windows)))
        for row in series.windows:
            assert 0.0 <= row["utilization"] <= 1.0
            assert len(row["queue_depth"]) == num_chips
            assert len(row["inflight"]) == num_chips
            assert all(depth >= 0 for depth in row["queue_depth"])
            assert all(count >= 0 for count in row["inflight"])
        # Everything drains by the horizon.
        assert series.windows[-1]["queue_depth"] == [0] * num_chips
        assert series.windows[-1]["inflight"] == [0] * num_chips

    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams, num_chips=st.integers(1, 3))
    def test_streamed_and_sharded_series_match_full_trace(
        self, stream, num_chips
    ):
        sim = _simulator(num_chips)
        full = sim.run(stream, telemetry_window_s=WINDOW_S)
        workloads = sorted({request.workload for request in stream})
        streamed = sim.run_stream(
            columnar_chunks(stream, 7), workloads, telemetry_window_s=WINDOW_S
        )
        sharded = sim.run(
            stream, shards=num_chips, telemetry_window_s=WINDOW_S
        )
        assert streamed.telemetry.windows == full.telemetry.windows
        assert sharded.telemetry.windows == full.telemetry.windows

    @settings(max_examples=15, deadline=None)
    @given(stream=request_streams)
    def test_energy_windows_sum_to_run_total(self, stream):
        sim = _simulator(2, policy=NoBatching())
        result = sim.run(stream, telemetry_window_s=WINDOW_S)
        total = sum(result.telemetry.column("energy_j"))
        assert total == pytest.approx(result.energy_joules, rel=1e-9)


class TestTelemetrySeries:
    def _series(self, entries, **kwargs):
        stream = [
            Request(request_id=index, workload=workload, arrival_s=arrival)
            for index, (workload, arrival) in enumerate(entries)
        ]
        sim = _simulator(kwargs.pop("num_chips", 2), **kwargs)
        return sim.run(stream, telemetry_window_s=WINDOW_S).telemetry

    def test_rows_carry_the_frozen_schema(self):
        series = self._series([("nvsa", 0.0), ("mimonet", 0.3)])
        for row in series.windows:
            assert tuple(row) == TELEMETRY_FIELDS

    def test_empty_window_has_null_percentiles(self):
        # One request at t=0 (1 s service), next at 2.6 s: the middle
        # window sees no completions.
        series = self._series([("mimonet", 0.0), ("mimonet", 2.6)])
        quiet = [row for row in series.windows if row["completions"] == 0]
        assert quiet
        assert all(row["p99_ms"] is None for row in quiet)

    def test_unknown_column_rejected(self):
        series = self._series([("nvsa", 0.0)])
        with pytest.raises(ServingError, match="unknown telemetry field"):
            series.column("p42_ms")

    def test_bad_window_rejected(self):
        sim = _simulator(1)
        with pytest.raises(ServingError, match="window"):
            sim.run(
                [Request(request_id=0, workload="nvsa", arrival_s=0.0)],
                telemetry_window_s=0.0,
            )

    def test_telemetry_off_by_default(self):
        sim = _simulator(1)
        result = sim.run(
            [Request(request_id=0, workload="nvsa", arrival_s=0.0)]
        )
        assert result.telemetry is None


class TestRequestSpans:
    def test_spans_decompose_latency(self):
        stream = [
            Request(request_id=index, workload="nvsa", arrival_s=0.0)
            for index in range(3)
        ]
        sim = _simulator(1, policy=NoBatching())
        spans = request_spans(sim.run(stream))
        assert len(spans) == 3
        for span in spans:
            assert tuple(span) == SPAN_FIELDS
            assert span["queue_wait_s"] + span["service_s"] == pytest.approx(
                span["latency_s"]
            )

    def test_streamed_results_rejected(self):
        sim = _simulator(1)
        stream = [Request(request_id=0, workload="nvsa", arrival_s=0.0)]
        streamed = sim.run_stream(columnar_chunks(stream, 8), ["nvsa"])
        with pytest.raises(ServingError, match="per-request records"):
            request_spans(streamed)


class TestExporters:
    def _series(self):
        stream = [
            Request(request_id=index, workload=workload, arrival_s=0.2 * index)
            for index, workload in enumerate(("nvsa", "mimonet", "lvrf"))
        ]
        sim = _simulator(2)
        return sim.run(stream, telemetry_window_s=WINDOW_S)

    def test_jsonl_roundtrip(self, tmp_path):
        result = self._series()
        path = write_jsonl(
            tmp_path / "telemetry.jsonl", result.telemetry,
            source={"scenario": "unit"},
        )
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == TELEMETRY_FORMAT
        assert header["fields"] == list(TELEMETRY_FIELDS)
        assert header["source"] == {"scenario": "unit"}
        rows = [json.loads(line) for line in lines[1:]]
        assert len(rows) == header["num_windows"]
        assert sum(row["completions"] for row in rows) == header["completed"]

    def test_spans_jsonl(self, tmp_path):
        result = self._series()
        path = write_spans_jsonl(
            tmp_path / "spans.jsonl", request_spans(result)
        )
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "cogsys-serving-spans"
        assert header["num_spans"] == len(lines) - 1
        assert json.loads(lines[1])["request_id"] == 0

    def test_prometheus_exposition(self):
        result = self._series()
        text = to_prometheus(result.telemetry)
        assert "# TYPE repro_serving_completions gauge" in text
        assert 'repro_serving_queue_depth{chip="1"}' in text
        assert "None" not in text

    def test_dashboard_renders_panels(self):
        result = self._series()
        view = render_dashboard(result.telemetry, title="unit run")
        assert "unit run" in view
        assert "completions/s" in view
        assert "utilization" in view

    def test_dashboard_rejects_empty_series(self):
        from repro.serving.telemetry import TelemetrySeries

        empty = TelemetrySeries(window_s=0.1, num_chips=1, windows=())
        with pytest.raises(ServingError, match="empty"):
            render_dashboard(empty)


class TestServeTelemetryCLI:
    ARGS = ["--load-scale", "0.2", "--duration-scale", "0.2"]

    def test_telemetry_export(self, tmp_path, capsys):
        out = tmp_path / "telemetry.jsonl"
        assert main(
            ["serve", "steady", *self.ARGS, "--telemetry", str(out),
             "--window-ms", "20"]
        ) == 0
        header = json.loads(out.read_text().splitlines()[0])
        assert header["format"] == TELEMETRY_FORMAT
        assert header["window_s"] == pytest.approx(0.02)
        assert header["source"]["scenario"] == "steady"

    def test_telemetry_prometheus_export(self, tmp_path, capsys):
        out = tmp_path / "telemetry.prom"
        assert main(
            ["serve", "steady", *self.ARGS, "--telemetry", str(out),
             "--telemetry-format", "prom"]
        ) == 0
        assert "# TYPE repro_serving_arrivals gauge" in out.read_text()

    def test_dashboard_renders(self, capsys):
        assert main(["serve", "steady", *self.ARGS, "--dashboard"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "completions/s" in out

    def test_sharded_telemetry_export_matches_single_shard(
        self, tmp_path, capsys
    ):
        single = tmp_path / "single.jsonl"
        sharded = tmp_path / "sharded.jsonl"
        base = [
            "serve", "steady", *self.ARGS, "--chips", "4",
            "--router", "round_robin",
        ]
        assert main([*base, "--telemetry", str(single)]) == 0
        assert main(
            [*base, "--shards", "4", "--telemetry", str(sharded)]
        ) == 0
        assert single.read_bytes() == sharded.read_bytes()

    @pytest.mark.parametrize(
        "argv",
        (
            ["serve", "steady", "--window-ms", "20"],
            ["serve", "steady", "--telemetry-format", "prom"],
            ["serve", "steady", "--dashboard", "--format", "json"],
            ["serve", "steady", "--profile", "--telemetry", "x.jsonl"],
            ["serve", "--list", "--dashboard"],
            ["serve", "steady", "--telemetry", "x.jsonl", "--window-ms", "0"],
        ),
        ids=(
            "window-without-telemetry", "format-without-telemetry",
            "dashboard-json", "profile-telemetry", "list-dashboard",
            "zero-window",
        ),
    )
    def test_stray_telemetry_flags_rejected(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err


class TestGoldenTelemetry:
    """Exported JSONL bytes for two presets, frozen at capture time.

    Regenerate only on a deliberate semantics change (see
    ``tests/serving/golden/README.md``).
    """

    @pytest.mark.parametrize("name", ("steady", "flash_crowd"))
    def test_export_matches_golden_snapshot(self, name, tmp_path):
        from pathlib import Path

        from repro.serving.scenarios import run_scenario

        _, result = run_scenario(
            name, seed=0, load_scale=1.0, duration_scale=0.1,
            telemetry_window_s=0.02,
        )
        path = write_jsonl(
            tmp_path / f"{name}.jsonl", result.telemetry,
            source={"scenario": name, "seed": 0},
        )
        golden = (
            Path(__file__).parent / "golden" / f"telemetry_{name}.jsonl"
        )
        assert path.read_bytes() == golden.read_bytes()
