"""Shared fixtures for the serving-simulator tests."""

import pytest

from repro.serving.traffic import Request


class FakeServiceModel:
    """Deterministic stand-in for :class:`AcceleratorServiceModel`.

    Service time is ``base[workload] * (0.5 + 0.5 * batch)`` — linear in the
    batch with a fixed amortized offset, so a batch of ``b`` costs less than
    ``b`` single-request launches (mirroring the real model's dispatch
    amortization) while unit tests stay instant and hand-checkable.
    """

    scheduler = "fake"

    def __init__(self, base=None):
        self.base = dict(base or {"nvsa": 1.0, "mimonet": 0.25, "lvrf": 1.0, "prae": 1.0})
        self.calls = 0

    def service_seconds(self, workload, batch_size):
        self.calls += 1
        return self.base[workload] * (0.5 + 0.5 * batch_size)

    def energy_joules(self, workload, batch_size):
        # 1 W chip: energy == occupancy seconds.
        return self.service_seconds(workload, batch_size)

    @property
    def cached_reports(self):
        return len(self.base)


@pytest.fixture
def fake_model():
    """A fast fake service model with 1 s nvsa / 0.25 s mimonet batches."""
    return FakeServiceModel()


@pytest.fixture
def make_requests():
    """Build a request list from ``(workload, arrival_s)`` tuples."""

    def _make(entries):
        return [
            Request(request_id=index, workload=workload, arrival_s=arrival)
            for index, (workload, arrival) in enumerate(entries)
        ]

    return _make
