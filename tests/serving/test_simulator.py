"""Tests for the discrete-event serving simulator core."""

import pytest

from repro.errors import ServingError
from repro.serving.batching import ContinuousBatching, FixedSizeBatching, NoBatching
from repro.serving.fleet import Fleet
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import PoissonArrivals, Request, WorkloadMix


def _simulator(fake_model, num_chips=1, router="round_robin", policy=None):
    return ServingSimulator(
        service_model=fake_model,
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy or NoBatching(),
    )


class TestValidation:
    def test_empty_stream_rejected(self, fake_model):
        with pytest.raises(ServingError, match="empty request stream"):
            _simulator(fake_model).run([])

    def test_duplicate_request_ids_rejected(self, fake_model):
        requests = [
            Request(request_id=1, workload="nvsa", arrival_s=0.0),
            Request(request_id=1, workload="nvsa", arrival_s=0.1),
        ]
        with pytest.raises(ServingError, match="duplicate request ids"):
            _simulator(fake_model).run(requests)


class TestSingleChipNoBatching:
    def test_fifo_queueing_matches_hand_trace(self, fake_model, make_requests):
        # Three nvsa requests at t=0 on one chip, 1 s service each
        # (fake model: 1.0 * (0.5 + 0.5)) -> finishes at 1, 2, 3 s.
        requests = make_requests([("nvsa", 0.0), ("nvsa", 0.0), ("nvsa", 0.0)])
        result = _simulator(fake_model).run(requests)
        assert [record.finish_s for record in result.records] == [1.0, 2.0, 3.0]
        assert [record.queue_delay_s for record in result.records] == [0.0, 1.0, 2.0]
        assert result.num_batches == 3
        assert result.mean_batch_size == 1.0

    def test_idle_gaps_do_not_count_as_busy(self, fake_model, make_requests):
        requests = make_requests([("nvsa", 0.0), ("nvsa", 10.0)])
        result = _simulator(fake_model).run(requests)
        assert sum(result.chip_busy_s) == pytest.approx(2.0)
        assert result.horizon_s == pytest.approx(11.0)
        assert result.utilization == pytest.approx(2.0 / 11.0)

    def test_every_request_served_exactly_once(self, fake_model):
        requests = PoissonArrivals(50.0, WorkloadMix.uniform()).generate(1.0, seed=3)
        result = _simulator(fake_model, num_chips=4, router="jsq").run(requests)
        assert result.num_requests == len(requests)
        assert [record.request_id for record in result.records] == [
            request.request_id for request in sorted(requests, key=lambda r: r.request_id)
        ]
        for record in result.records:
            assert record.arrival_s <= record.dispatch_s <= record.finish_s


class TestBatching:
    def test_burst_is_served_as_one_batch(self, fake_model, make_requests):
        requests = make_requests([("nvsa", 0.0)] * 4)
        result = _simulator(
            fake_model, policy=ContinuousBatching(max_batch_size=8)
        ).run(requests)
        assert result.num_batches == 1
        assert result.mean_batch_size == 4.0
        # Fake model: 1.0 * (0.5 + 0.5 * 4) = 2.5 s for the whole batch,
        # versus 4 s if served one by one.
        assert all(record.finish_s == pytest.approx(2.5) for record in result.records)

    def test_fixed_size_timeout_flushes_partial_batch(self, fake_model, make_requests):
        requests = make_requests([("nvsa", 0.0), ("nvsa", 0.1)])
        policy = FixedSizeBatching(batch_size=8, max_wait_s=0.5)
        result = _simulator(fake_model, policy=policy).run(requests)
        assert result.num_batches == 1
        # The wake-up fires at arrival + max_wait, then the batch runs 1.5 s.
        assert all(
            record.dispatch_s == pytest.approx(0.5) for record in result.records
        )

    def test_stale_wake_event_does_not_stretch_the_horizon(
        self, fake_model, make_requests
    ):
        # The partial group at t=0 schedules a wake at t=5; the second
        # arrival fills the batch at t=0.1 (service 1.5 s -> finish 1.6 s).
        # The stale wake then fires into an empty system and must not move
        # the horizon, or throughput/utilization would be silently deflated.
        requests = make_requests([("nvsa", 0.0), ("nvsa", 0.1)])
        policy = FixedSizeBatching(batch_size=2, max_wait_s=5.0)
        result = _simulator(fake_model, policy=policy).run(requests)
        assert result.num_batches == 1
        assert result.horizon_s == pytest.approx(1.6)
        assert result.throughput_rps == pytest.approx(2 / 1.6)

    def test_mixed_workload_batch_from_a_policy_is_rejected(self, fake_model):
        class BrokenPolicy(NoBatching):
            def select(self, queue, now_s):
                from repro.serving.batching import BatchDecision

                return BatchDecision(batch=list(queue)) if queue else BatchDecision(None)

        requests = [
            Request(request_id=0, workload="nvsa", arrival_s=0.0),
            Request(request_id=1, workload="prae", arrival_s=0.0),
        ]
        with pytest.raises(ServingError, match="share one workload"):
            _simulator(fake_model, policy=BrokenPolicy()).run(requests)

    def test_batches_never_mix_workloads(self, fake_model):
        requests = PoissonArrivals(100.0, WorkloadMix.uniform()).generate(0.5, seed=8)
        result = _simulator(
            fake_model, policy=ContinuousBatching(max_batch_size=8)
        ).run(requests)
        by_batch = {}
        for record in result.records:
            by_batch.setdefault((record.chip, record.dispatch_s), set()).add(
                record.workload
            )
        assert all(len(workloads) == 1 for workloads in by_batch.values())


class TestDispatchOrder:
    """Pin the exact dequeue/dispatch order of the slot-keyed queues.

    Regression test for the old ``id()``-based list scan: selected
    requests must be removed head-first from their workload group, the
    remaining requests must keep FIFO order, and group precedence must
    follow first-occurrence order on arrival ties.
    """

    def test_interleaved_workloads_dispatch_in_pinned_order(self, fake_model):
        # One chip; nvsa ids 0/2/4 and mimonet ids 1/3 all land at t=0.
        requests = [
            Request(request_id=0, workload="nvsa", arrival_s=0.0),
            Request(request_id=1, workload="mimonet", arrival_s=0.0),
            Request(request_id=2, workload="nvsa", arrival_s=0.0),
            Request(request_id=3, workload="mimonet", arrival_s=0.0),
            Request(request_id=4, workload="nvsa", arrival_s=0.0),
        ]
        policy = FixedSizeBatching(batch_size=2, max_wait_s=10.0)
        result = _simulator(fake_model, policy=policy).run(requests)

        batches = {}
        for record in result.records:
            batches.setdefault(record.dispatch_s, []).append(record)
        dispatch_times = sorted(batches)
        ordered = [
            sorted(r.request_id for r in batches[t]) for t in dispatch_times
        ]
        # Batch 1: both groups are full with equal head arrivals; nvsa wins
        # on first-occurrence order and ships its two oldest (0, 2) — NOT
        # (0, 4) or any other subset.  Batch 2: the full mimonet pair.
        # Batch 3: the leftover nvsa request, flushed by the timeout wake.
        assert ordered == [[0, 2], [1, 3], [4]]
        # nvsa pair: 1.5 s; mimonet pair starts right after it.
        assert dispatch_times[0] == 0.0
        assert dispatch_times[1] == pytest.approx(1.5)
        # The partial nvsa group waits for the max_wait timeout, not the
        # chip: it dispatches at arrival + max_wait.
        assert dispatch_times[2] == pytest.approx(10.0)
        # FIFO within the workload: id 2 rode in the first batch while the
        # younger id 4 waited.
        finish_by_id = {r.request_id: r.finish_s for r in result.records}
        assert finish_by_id[2] < finish_by_id[4]

    def test_subclass_plan_is_not_bypassed_by_inherited_shortcuts(
        self, fake_model, make_requests
    ):
        # A subclass overriding plan() (and select() to match) inherits
        # eager_singleton/single_group_cap from ContinuousBatching, but the
        # dispatch shortcuts must NOT bypass its custom logic: this policy
        # refuses to dispatch before two requests are queued.
        from repro.serving.batching import BatchDecision, ContinuousBatching

        class WaitForPair(ContinuousBatching):
            def select(self, queue, now_s):
                if len(queue) < 2:
                    return BatchDecision(batch=None)
                return super().select(queue, now_s)

            def plan(self, groups, now_s):
                if sum(len(entries) for entries in groups.values()) < 2:
                    return None, 0, None
                return super().plan(groups, now_s)

        requests = make_requests([("nvsa", 0.0), ("nvsa", 3.0)])
        result = _simulator(fake_model, policy=WaitForPair()).run(requests)
        # The first lone arrival must wait for the second — one batch of 2,
        # dispatched at the second arrival, not an eager singleton at t=0.
        assert result.num_batches == 1
        assert all(r.dispatch_s == pytest.approx(3.0) for r in result.records)
        assert all(r.batch_size == 2 for r in result.records)

    def test_continuous_batching_prefers_urgent_group_deterministically(
        self, fake_model
    ):
        # Same-instant burst across two workloads with one shared SLO: the
        # deadline tie breaks on workload name, so 'mimonet' < 'nvsa' ships
        # first no matter the queue interleaving.
        requests = [
            Request(request_id=0, workload="nvsa", arrival_s=0.0),
            Request(request_id=1, workload="mimonet", arrival_s=0.0),
            Request(request_id=2, workload="nvsa", arrival_s=0.0),
        ]
        policy = ContinuousBatching(max_batch_size=8, slo_s=5.0)
        result = _simulator(fake_model, policy=policy).run(requests)
        first_batch = min(result.records, key=lambda r: r.dispatch_s)
        assert first_batch.workload == "mimonet"


class TestFleetBehaviour:
    def test_round_robin_spreads_requests(self, fake_model, make_requests):
        requests = make_requests([("nvsa", t / 100.0) for t in range(8)])
        result = _simulator(fake_model, num_chips=4).run(requests)
        assert result.chip_requests == (2, 2, 2, 2)

    def test_jsq_avoids_the_backed_up_chip(self, fake_model, make_requests):
        # Two chips; a slow 1 s nvsa burst lands first, then quick requests.
        requests = make_requests(
            [("nvsa", 0.0), ("mimonet", 0.01), ("mimonet", 0.02), ("mimonet", 0.03)]
        )
        result = _simulator(fake_model, num_chips=2, router="jsq").run(requests)
        nvsa_chip = result.records[0].chip
        quick = [record for record in result.records if record.workload == "mimonet"]
        assert sum(1 for record in quick if record.chip != nvsa_chip) >= 2

    def test_more_chips_reduce_latency_under_load(self, fake_model):
        requests = PoissonArrivals(
            3.0, WorkloadMix({"nvsa": 1.0})
        ).generate(3.0, seed=5)
        single = _simulator(fake_model, num_chips=1).run(requests)
        quad = _simulator(fake_model, num_chips=4, router="jsq").run(requests)
        assert max(quad.latencies_s()) < max(single.latencies_s())

    def test_energy_accumulates_per_batch(self, fake_model, make_requests):
        requests = make_requests([("nvsa", 0.0), ("nvsa", 5.0)])
        result = _simulator(fake_model).run(requests)
        # Fake model: 1 W chip, two 1 s batches.
        assert result.energy_joules == pytest.approx(2.0)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self, fake_model):
        requests = PoissonArrivals(200.0, WorkloadMix.uniform()).generate(1.0, seed=13)
        first = _simulator(
            fake_model, num_chips=3, router="jsq", policy=ContinuousBatching(8)
        ).run(requests)
        second = _simulator(
            fake_model, num_chips=3, router="jsq", policy=ContinuousBatching(8)
        ).run(requests)
        assert first.latencies_s() == second.latencies_s()
        assert first.chip_requests == second.chip_requests
        assert first.energy_joules == second.energy_joules


class TestProvenance:
    def test_result_carries_run_configuration(self, fake_model, make_requests):
        result = _simulator(fake_model, num_chips=2, router="jsq").run(
            make_requests([("nvsa", 0.0)])
        )
        assert result.provenance["num_chips"] == 2
        assert result.provenance["router"] == "jsq"
        assert result.provenance["batching_policy"] == "none"
