"""Tests for JSONL request traces: format, streaming replay, acceptance."""

import json
import time

import pytest

from repro.errors import ServingError
from repro.serving.batching import build_policy
from repro.serving.fleet import Fleet, FleetServiceModel
from repro.serving.metrics import per_workload_summary, summarize_result
from repro.serving.scenarios import get_scenario
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import (
    RequestTrace,
    read_header,
    record_process,
    record_scenario,
    replay_trace,
    write_trace,
)
from repro.serving.traffic import PoissonArrivals, Request, WorkloadMix


class TestFormat:
    def test_roundtrip_preserves_every_request(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        original = PoissonArrivals(500.0, WorkloadMix.uniform()).generate(
            1.0, seed=3
        )
        info = write_trace(path, original, source={"origin": "unit-test"})
        assert info.num_requests == len(original)
        assert info.source["origin"] == "unit-test"
        assert RequestTrace(path).requests() == original

    def test_header_carries_workloads_and_duration(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        requests = [
            Request(0, "nvsa", 0.5),
            Request(1, "mimonet", 1.0),
            Request(2, "nvsa", 2.5),
        ]
        info = write_trace(path, requests)
        assert info.workloads == ("mimonet", "nvsa")
        assert info.duration_s == 2.5
        # The header is the first (fixed-width, greppable) line.
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line)["format"] == "cogsys-request-trace"

    def test_unsorted_stream_is_rejected_at_recording(self, tmp_path):
        requests = [Request(0, "nvsa", 1.0), Request(1, "nvsa", 0.5)]
        with pytest.raises(ServingError, match="sorted"):
            write_trace(tmp_path / "bad.jsonl", requests)

    def test_non_increasing_ids_are_rejected_at_recording(self, tmp_path):
        requests = [Request(5, "nvsa", 0.1), Request(5, "nvsa", 0.2)]
        with pytest.raises(ServingError, match="strictly increasing"):
            write_trace(tmp_path / "bad.jsonl", requests)

    def test_empty_stream_is_rejected(self, tmp_path):
        with pytest.raises(ServingError, match="empty"):
            write_trace(tmp_path / "bad.jsonl", [])

    def test_non_trace_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text("hello world\n")
        with pytest.raises(ServingError, match="not a request trace"):
            read_header(path)

    def test_truncated_trace_fails_loudly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(
            path,
            [Request(i, "nvsa", i / 10.0) for i in range(10)],
        )
        lines = path.read_bytes().splitlines(keepends=True)
        (tmp_path / "cut.jsonl").write_bytes(b"".join(lines[:-2]))
        trace = RequestTrace(tmp_path / "cut.jsonl")
        with pytest.raises(ServingError, match="truncated"):
            list(trace.iter_chunks())

    def test_tampered_workload_is_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, [Request(0, "nvsa", 0.0), Request(1, "nvsa", 0.5)])
        tampered = path.read_text().replace('"nvsa", 0.5', '"bogus", 0.5')
        (tmp_path / "bad.jsonl").write_text(tampered)
        with pytest.raises(ServingError, match="bogus"):
            list(RequestTrace(tmp_path / "bad.jsonl").iter_chunks())


class TestChunking:
    def test_chunks_partition_the_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        info = record_process(
            path, PoissonArrivals(400.0, WorkloadMix.uniform()), 1.0, seed=1
        )
        chunks = list(RequestTrace(path).iter_chunks(chunk_size=64))
        assert sum(len(ids) for _, _, ids in chunks) == info.num_requests
        assert all(len(ids) <= 64 for _, _, ids in chunks)
        flat = [i for _, _, ids in chunks for i in ids]
        assert flat == sorted(flat)

    def test_windowed_recording_streams_in_bounded_memory(self, tmp_path):
        # Windowed generation must produce a valid, sorted, id-continuous
        # trace even though every window is generated independently.
        path = tmp_path / "trace.jsonl"
        info = record_process(
            path,
            PoissonArrivals(300.0, WorkloadMix.uniform()),
            duration_s=2.0,
            seed=4,
            window_s=0.25,
        )
        requests = RequestTrace(path).requests()
        assert [r.request_id for r in requests] == list(range(len(requests)))
        assert info.source["window_s"] == 0.25


class TestReplay:
    def test_streamed_replay_matches_in_memory_run(self, tmp_path):
        path = tmp_path / "steady.jsonl"
        record_scenario(path, "steady", seed=0, duration_scale=0.1)
        scenario = get_scenario("steady")
        fleet = Fleet(num_chips=scenario.num_chips, router=scenario.router)
        model = FleetServiceModel(fleet=fleet)
        streamed = replay_trace(
            path,
            num_chips=scenario.num_chips,
            router=scenario.router,
            policy=scenario.policy,
            service_model=model,
            chunk_size=37,  # deliberately awkward chunking
        )
        simulator = ServingSimulator(
            service_model=model,
            fleet=fleet,
            batching_policy=build_policy(scenario.policy),
        )
        in_memory = simulator.run(RequestTrace(path).requests())
        assert summarize_result(streamed, scenario.slo_s) == summarize_result(
            in_memory, scenario.slo_s
        )
        assert per_workload_summary(streamed, scenario.slo_s) == (
            per_workload_summary(in_memory, scenario.slo_s)
        )
        assert streamed.num_batches == in_memory.num_batches
        assert streamed.energy_joules == in_memory.energy_joules
        assert streamed.chip_busy_s == in_memory.chip_busy_s

    def test_replay_is_deterministic(self, tmp_path):
        path = tmp_path / "flash.jsonl"
        record_scenario(path, "flash_crowd", seed=9, duration_scale=0.1)
        first = replay_trace(path, chunk_size=50)
        second = replay_trace(path, chunk_size=200)  # chunking is irrelevant
        assert first.latency_s.tolist() == second.latency_s.tolist()
        assert first.chip_requests == second.chip_requests
        assert first.energy_joules == second.energy_joules

    def test_recorded_scenario_replay_reproduces_scenario_metrics(
        self, tmp_path
    ):
        # Replaying a recorded scenario on the scenario's own fleet is the
        # same experiment as running the scenario directly.
        from repro.serving.scenarios import run_scenario

        path = tmp_path / "mixed.jsonl"
        record_scenario(path, "mixed_workload", seed=2, duration_scale=0.1)
        scenario, direct = run_scenario(
            "mixed_workload", seed=2, duration_scale=0.1
        )
        streamed = replay_trace(
            path,
            num_chips=scenario.num_chips,
            router=scenario.router,
            policy=scenario.policy,
        )
        assert summarize_result(streamed, scenario.slo_s) == summarize_result(
            direct, scenario.slo_s
        )


class TestAcceptance:
    @pytest.mark.slow
    def test_million_request_trace_replays_deterministically_in_budget(
        self, tmp_path
    ):
        """Acceptance: 1M recorded requests replay via the streaming core
        deterministically and in well under the 120 s budget."""
        path = tmp_path / "million.jsonl"
        info = record_process(
            path,
            PoissonArrivals(10000.0, WorkloadMix.uniform()),
            duration_s=100.0,
            seed=7,
            window_s=5.0,
        )
        assert info.num_requests >= 1_000_000
        started = time.perf_counter()
        first = replay_trace(path, num_chips=4)
        elapsed = time.perf_counter() - started
        assert elapsed < 120.0
        assert first.num_requests == info.num_requests
        second = replay_trace(path, num_chips=4)
        assert first.latency_s.tolist() == second.latency_s.tolist()
        assert first.energy_joules == second.energy_joules
