"""Tests for the seeded arrival-process generators."""

import pytest

from repro.errors import ServingError
from repro.serving.traffic import (
    MMPPArrivals,
    PoissonArrivals,
    Request,
    TraceArrivals,
    WorkloadMix,
    concatenate_segments,
)


class TestRequest:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ServingError):
            Request(request_id=0, workload="nvsa", arrival_s=-1.0)


class TestWorkloadMix:
    def test_uniform_covers_all_registered_workloads(self):
        mix = WorkloadMix.uniform()
        assert mix.names == ("lvrf", "mimonet", "nvsa", "prae")
        assert sum(mix.probabilities) == pytest.approx(1.0)

    def test_weights_are_normalised(self):
        mix = WorkloadMix({"nvsa": 3.0, "mimonet": 1.0})
        assert dict(zip(mix.names, mix.probabilities)) == {
            "mimonet": 0.25,
            "nvsa": 0.75,
        }

    @pytest.mark.parametrize(
        "weights",
        [{}, {"bogus": 1.0}, {"nvsa": -1.0}, {"nvsa": 0.0}],
    )
    def test_invalid_mixes_rejected(self, weights):
        with pytest.raises(ServingError):
            WorkloadMix(weights)


class TestPoissonArrivals:
    def test_same_seed_is_identical(self):
        process = PoissonArrivals(500.0, WorkloadMix.uniform())
        first = process.generate(1.0, seed=7)
        second = process.generate(1.0, seed=7)
        assert first == second

    def test_different_seeds_differ(self):
        process = PoissonArrivals(500.0, WorkloadMix.uniform())
        assert process.generate(1.0, seed=1) != process.generate(1.0, seed=2)

    def test_stream_is_sorted_with_sequential_ids(self):
        requests = PoissonArrivals(300.0, WorkloadMix.uniform()).generate(
            1.0, seed=3, start_s=2.0, start_id=10
        )
        arrivals = [request.arrival_s for request in requests]
        assert arrivals == sorted(arrivals)
        assert all(2.0 <= arrival < 3.0 for arrival in arrivals)
        assert [request.request_id for request in requests] == list(
            range(10, 10 + len(requests))
        )

    def test_rate_is_approximately_honoured(self):
        requests = PoissonArrivals(1000.0, WorkloadMix.uniform()).generate(
            2.0, seed=11
        )
        assert 1800 <= len(requests) <= 2200

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServingError):
            PoissonArrivals(0.0, WorkloadMix.uniform())
        with pytest.raises(ServingError):
            PoissonArrivals(100.0, WorkloadMix.uniform()).generate(0.0)


class TestMMPPArrivals:
    def _process(self, **overrides):
        kwargs = dict(
            normal_rate_rps=100.0,
            burst_rate_rps=2000.0,
            mix=WorkloadMix.uniform(),
            mean_normal_s=0.4,
            mean_burst_s=0.2,
        )
        kwargs.update(overrides)
        return MMPPArrivals(**kwargs)

    def test_same_seed_is_identical(self):
        process = self._process()
        assert process.generate(2.0, seed=5) == process.generate(2.0, seed=5)

    def test_bursts_add_traffic_over_the_base_rate(self):
        bursty = self._process().generate(4.0, seed=9)
        plain = PoissonArrivals(100.0, WorkloadMix.uniform()).generate(4.0, seed=9)
        assert len(bursty) > len(plain) * 1.5

    def test_arrivals_stay_inside_the_window(self):
        requests = self._process().generate(1.5, seed=2, start_s=1.0)
        assert all(1.0 <= request.arrival_s < 2.5 for request in requests)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"normal_rate_rps": 0.0},
            {"burst_rate_rps": -1.0},
            {"mean_normal_s": 0.0},
            {"mean_burst_s": -0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(ServingError):
            self._process(**overrides)


class TestTraceArrivals:
    def test_replay_preserves_trace_order_and_clips_to_window(self):
        trace = [(0.5, "nvsa"), (0.1, "mimonet"), (2.5, "lvrf")]
        requests = TraceArrivals(trace).generate(2.0, seed=0)
        assert [(r.arrival_s, r.workload) for r in requests] == [
            (0.1, "mimonet"),
            (0.5, "nvsa"),
        ]
        assert [r.request_id for r in requests] == [0, 1]

    def test_seed_does_not_matter_for_replay(self):
        trace = [(0.1, "nvsa"), (0.2, "prae")]
        process = TraceArrivals(trace)
        assert process.generate(1.0, seed=1) == process.generate(1.0, seed=99)

    def test_invalid_traces_rejected(self):
        with pytest.raises(ServingError):
            TraceArrivals([])
        with pytest.raises(ServingError):
            TraceArrivals([(0.1, "bogus")])


class TestConcatenateSegments:
    def test_segments_are_offset_back_to_back(self):
        mix = WorkloadMix.uniform()
        segments = [
            (PoissonArrivals(200.0, mix), 1.0),
            (PoissonArrivals(200.0, mix), 1.0),
        ]
        requests = concatenate_segments(segments, seed=4)
        arrivals = [request.arrival_s for request in requests]
        assert arrivals == sorted(arrivals)
        assert any(arrival >= 1.0 for arrival in arrivals)
        assert all(arrival < 2.0 for arrival in arrivals)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_deterministic_and_seed_sensitive(self):
        mix = WorkloadMix.uniform()
        segments = [(PoissonArrivals(300.0, mix), 0.5)]
        assert concatenate_segments(segments, seed=1) == concatenate_segments(
            segments, seed=1
        )
        assert concatenate_segments(segments, seed=1) != concatenate_segments(
            segments, seed=2
        )

    def test_empty_segment_list_rejected(self):
        with pytest.raises(ServingError):
            concatenate_segments([])
