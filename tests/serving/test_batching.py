"""Tests for the batching policies."""

import pytest

from repro.errors import ServingError
from repro.serving.batching import (
    BATCHING_POLICIES,
    Batch,
    ContinuousBatching,
    FixedSizeBatching,
    NoBatching,
    build_policy,
)
from repro.serving.traffic import Request


def _queue(entries):
    return tuple(
        Request(request_id=index, workload=workload, arrival_s=arrival)
        for index, (workload, arrival) in enumerate(entries)
    )


class TestBatch:
    def test_size_and_validation(self):
        requests = _queue([("nvsa", 0.0), ("nvsa", 0.1)])
        assert Batch("nvsa", requests, formed_s=0.2).size == 2
        with pytest.raises(ServingError):
            Batch("nvsa", (), formed_s=0.0)
        with pytest.raises(ServingError):
            Batch("nvsa", _queue([("nvsa", 0.0), ("prae", 0.1)]), formed_s=0.2)


class TestNoBatching:
    def test_dispatches_head_alone(self):
        queue = _queue([("nvsa", 0.0), ("nvsa", 0.1)])
        decision = NoBatching().select(queue, now_s=0.2)
        assert decision.batch == [queue[0]]
        assert decision.wake_s is None

    def test_empty_queue_waits(self):
        assert NoBatching().select((), now_s=0.0).batch is None


class TestFixedSizeBatching:
    def test_full_group_dispatches_immediately(self):
        policy = FixedSizeBatching(batch_size=2, max_wait_s=10.0)
        queue = _queue([("nvsa", 0.0), ("prae", 0.1), ("nvsa", 0.2)])
        decision = policy.select(queue, now_s=0.2)
        assert [r.request_id for r in decision.batch] == [0, 2]

    def test_partial_group_waits_until_timeout(self):
        policy = FixedSizeBatching(batch_size=4, max_wait_s=1.0)
        queue = _queue([("nvsa", 0.5)])
        waiting = policy.select(queue, now_s=0.6)
        assert waiting.batch is None
        assert waiting.wake_s == pytest.approx(1.5)
        expired = policy.select(queue, now_s=1.5)
        assert [r.request_id for r in expired.batch] == [0]

    def test_oldest_full_group_wins(self):
        policy = FixedSizeBatching(batch_size=2, max_wait_s=10.0)
        queue = _queue(
            [("prae", 0.3), ("nvsa", 0.1), ("prae", 0.4), ("nvsa", 0.2)]
        )
        decision = policy.select(queue, now_s=0.5)
        assert all(request.workload == "nvsa" for request in decision.batch)

    def test_batch_capped_at_batch_size(self):
        policy = FixedSizeBatching(batch_size=2, max_wait_s=10.0)
        queue = _queue([("nvsa", t / 10) for t in range(5)])
        assert len(policy.select(queue, now_s=1.0).batch) == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServingError):
            FixedSizeBatching(batch_size=0)
        with pytest.raises(ServingError):
            FixedSizeBatching(batch_size=2, max_wait_s=-1.0)


class TestContinuousBatching:
    def test_never_idles_a_chip_with_queued_work(self):
        policy = ContinuousBatching(max_batch_size=8)
        queue = _queue([("nvsa", 0.0)])
        decision = policy.select(queue, now_s=0.0)
        assert [r.request_id for r in decision.batch] == [0]
        assert decision.wake_s is None

    def test_takes_whole_group_up_to_cap(self):
        policy = ContinuousBatching(max_batch_size=3)
        queue = _queue([("nvsa", t / 10) for t in range(5)])
        decision = policy.select(queue, now_s=1.0)
        assert [r.request_id for r in decision.batch] == [0, 1, 2]

    def test_most_urgent_head_of_line_goes_first(self):
        policy = ContinuousBatching(max_batch_size=8, slo_s=1.0)
        queue = _queue([("prae", 0.5), ("nvsa", 0.1), ("prae", 0.6)])
        decision = policy.select(queue, now_s=0.7)
        assert all(request.workload == "nvsa" for request in decision.batch)

    def test_per_workload_slo_preempts_an_older_slack_group(self):
        # prae arrived first but has 5 s of slack; nvsa's 0.1 s SLO gives it
        # the earlier deadline (0.3 < 5.1), so EDF picks nvsa.
        policy = ContinuousBatching(
            max_batch_size=8, slo_s={"nvsa": 0.1, "prae": 5.0}
        )
        queue = _queue([("prae", 0.1), ("nvsa", 0.2)])
        decision = policy.select(queue, now_s=0.25)
        assert all(request.workload == "nvsa" for request in decision.batch)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServingError):
            ContinuousBatching(max_batch_size=0)
        with pytest.raises(ServingError):
            ContinuousBatching(max_batch_size=2, slo_s=0.0)
        with pytest.raises(ServingError):
            ContinuousBatching(max_batch_size=2, slo_s={"nvsa": -1.0})


class TestRegistry:
    def test_known_policies(self):
        assert set(BATCHING_POLICIES) == {"none", "fixed", "continuous"}
        assert isinstance(build_policy("none"), NoBatching)
        assert isinstance(build_policy("fixed", batch_size=4), FixedSizeBatching)
        assert isinstance(build_policy("continuous"), ContinuousBatching)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServingError, match="unknown batching policy"):
            build_policy("bogus")
