"""Tests for the closed-loop serving control plane (`serving/control.py`).

Four invariant families the controller must uphold:

* **Conservation with shed** — admission control joins the chaos layer's
  identity: every arrival is completed, lost or shed, under any policy.
* **Warm-up discipline** — no request is ever dispatched on a chip before
  that chip's ``first_active_at_s``: the router cannot see warming chips.
* **Controller-off byte-identity** — a ``controller=None`` run through
  `run_scenario` reproduces the PR 9 goldens exactly; the control plane
  is pay-for-what-you-use.
* **Determinism** — same seed, same action log, per policy.

Plus `ControllerConfig` validation and the CLI flag-combination
rejections the controller multiplies.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ServingError
from repro.serving.batching import ContinuousBatching, NoBatching
from repro.serving.chaos import ChaosTimeline, chip_failure
from repro.serving.control import (
    CONTROLLER_POLICIES,
    ControllerConfig,
    run_controlled,
)
from repro.serving.fleet import Fleet
from repro.serving.scenarios import run_scenario
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import Request

GOLDEN_DIR = Path(__file__).parent / "golden"

WORKLOADS = ("nvsa", "mimonet", "lvrf", "prae")


class FakeServiceModel:
    """Deterministic service model: ``base * (0.5 + 0.5 * batch)``."""

    scheduler = "fake"
    cached_reports = 0

    def __init__(self, base=None):
        self.base = dict(base or {name: 0.01 for name in WORKLOADS})

    def service_seconds(self, workload, batch_size):
        return self.base[workload] * (0.5 + 0.5 * batch_size)

    def energy_joules(self, workload, batch_size):
        return self.service_seconds(workload, batch_size)


def _simulator(policy=None, num_chips=2, router="jsq", chaos=None):
    return ServingSimulator(
        service_model=FakeServiceModel(),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy or ContinuousBatching(max_batch_size=4),
        chaos=chaos,
    )


def _record_rows(result):
    return [
        [r.request_id, r.workload, r.chip, r.arrival_s, r.dispatch_s,
         r.finish_s, r.batch_size]
        for r in result.records
    ]


#: arrivals on a 2 ms grid so ticks, warm-ups and completions collide
request_streams = st.lists(
    st.tuples(
        st.sampled_from(WORKLOADS),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=1,
    max_size=60,
).map(
    lambda entries: [
        Request(request_id=index, workload=workload, arrival_s=tick / 500.0)
        for index, (workload, tick) in enumerate(
            sorted(entries, key=lambda e: e[1])
        )
    ]
)


class TestConfigValidation:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(policy="nope"), "unknown controller policy"),
            (dict(interval_s=0.0), "interval_s"),
            (dict(interval_s=float("inf")), "interval_s"),
            (dict(warmup_s=-1.0), "warmup_s"),
            (dict(min_chips=0), "min_chips"),
            (dict(max_chips=0), "max_chips"),
            (dict(min_chips=9, max_chips=4), "cannot exceed"),
            (dict(target_utilization=0.0), "target_utilization"),
            (dict(target_utilization=1.5), "target_utilization"),
            (dict(deadband=-0.1), "deadband"),
            (dict(target_queue=0.0), "target_queue"),
            (dict(slo_s=0.0), "slo_s"),
            (dict(slo_budget_s=0.0), "slo_budget_s"),
            (dict(slo_budget_s={"nvsa": -1.0}), "budgets must be positive"),
            (dict(batch_min=0), "batch"),
            (dict(batch_min=8, batch_max=2), "batch"),
            (dict(imbalance_threshold=0), "imbalance_threshold"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ServingError, match=match):
            ControllerConfig(**kwargs)

    def test_budget_for_prefers_mapping_then_slo(self):
        config = ControllerConfig(
            slo_s=0.01, slo_budget_s={"nvsa": 0.002}
        )
        assert config.budget_for("nvsa") == 0.002
        assert config.budget_for("mimonet") == 0.01
        off = ControllerConfig(slo_s=0.01, admission=False)
        assert off.budget_for("nvsa") is None

    def test_to_dict_is_json_ready(self):
        config = ControllerConfig(slo_budget_s={"nvsa": 0.002})
        assert json.dumps(config.to_dict())

    def test_run_rejects_wrong_types_and_fleets(self):
        sim = _simulator()
        requests = [Request(0, "nvsa", 0.0)]
        with pytest.raises(ServingError, match="ControllerConfig"):
            run_controlled(sim, "target_util", requests)
        with pytest.raises(ServingError, match="empty stream"):
            run_controlled(sim, ControllerConfig(), [])
        affinity = _simulator(router="affinity")
        with pytest.raises(ServingError, match="affinity"):
            run_controlled(affinity, ControllerConfig(), requests)
        with pytest.raises(ServingError, match="cannot exceed"):
            run_controlled(sim, ControllerConfig(max_chips=1), requests)
        with pytest.raises(ServingError, match="already exceeds"):
            run_controlled(
                sim, ControllerConfig(min_chips=1, max_chips=1), requests
            )


@pytest.mark.parametrize("policy_name", CONTROLLER_POLICIES)
class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams)
    def test_arrived_equals_completed_plus_shed_plus_lost(
        self, policy_name, stream
    ):
        sim = _simulator()
        config = ControllerConfig(
            policy=policy_name, slo_s=0.004, warmup_s=0.02,
            target_queue=2.0, max_chips=4,
        )
        result = run_controlled(sim, config, stream)
        assert (
            len(result.records) + result.requests_lost + result.requests_shed
            == len(stream)
        )
        assert result.requests_arrived == len(stream)
        # Records come back sorted by request id, like every other core.
        ids = [record.request_id for record in result.records]
        assert ids == sorted(ids)

    def test_conservation_holds_under_chaos(self, policy_name):
        stream = [
            Request(i, WORKLOADS[i % 4], 0.002 * i) for i in range(120)
        ]
        sim = _simulator(
            chaos=ChaosTimeline((chip_failure(0, 0.05, float("inf")),)),
        )
        config = ControllerConfig(policy=policy_name, slo_s=0.02)
        result = run_controlled(sim, config, stream)
        assert (
            len(result.records) + result.requests_lost + result.requests_shed
            == 120
        )
        assert result.incidents


class TestWarmup:
    def test_no_dispatch_before_first_active(self):
        # Saturate a 1-chip fleet so the autoscaler provisions more; every
        # dispatch must land on a chip that had finished warming by then.
        stream = [Request(i, "nvsa", 0.001 * i) for i in range(200)]
        sim = _simulator(num_chips=1)
        config = ControllerConfig(
            policy="queue_pid", target_queue=2.0, warmup_s=0.04,
            max_chips=6, admission=False, adapt_batching=False,
        )
        result = run_controlled(sim, config, stream)
        info = result.provenance["controller"]
        assert info["scale_ups"] > 0
        assert info["peak_chips"] > 1
        first_active = {
            entry["chip"]: entry["first_active_at_s"]
            for entry in info["chips"]
        }
        assert any(at > 0 for at in first_active.values() if at is not None)
        for record in result.records:
            activated = first_active[record.chip]
            assert activated is not None
            assert record.dispatch_s >= activated

    def test_zero_warmup_activates_instantly(self):
        stream = [Request(i, "nvsa", 0.001 * i) for i in range(80)]
        sim = _simulator(num_chips=1)
        config = ControllerConfig(
            policy="queue_pid", target_queue=1.0, warmup_s=0.0,
            max_chips=4, admission=False,
        )
        result = run_controlled(sim, config, stream)
        info = result.provenance["controller"]
        assert info["peak_chips"] > 1
        assert all(
            entry["first_active_at_s"] == entry["created_at_s"]
            for entry in info["chips"]
        )


@pytest.mark.parametrize("policy_name", CONTROLLER_POLICIES)
class TestDeterminism:
    def test_same_seed_same_actions(self, policy_name):
        config = ControllerConfig(policy=policy_name)
        runs = [
            run_scenario(
                "flash_crowd", seed=3, duration_scale=0.2, controller=config
            )[1]
            for _ in range(2)
        ]
        first, second = (run.provenance["controller"] for run in runs)
        assert first["actions"] == second["actions"]
        assert first["peak_chips"] == second["peak_chips"]
        assert _record_rows(runs[0]) == _record_rows(runs[1])
        assert runs[0].energy_joules == runs[1].energy_joules


class TestControllerOffByteIdentity:
    @pytest.mark.parametrize("name", ("flash_crowd", "ramp_surge"))
    def test_controller_none_reproduces_golden_records(self, name):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        _, result = run_scenario(
            name,
            seed=golden["seed"],
            load_scale=golden["load_scale"],
            duration_scale=golden["duration_scale"],
            controller=None,
        )
        assert _record_rows(result) == golden["records"]
        assert result.energy_joules == golden["energy_joules"]
        assert "controller" not in result.provenance


class TestAdmission:
    def test_tight_budget_sheds_and_loose_budget_does_not(self):
        stream = [Request(i, "nvsa", 0.0005 * i) for i in range(100)]
        config = ControllerConfig(
            policy="target_util", slo_s=0.004, max_chips=2,
            adapt_batching=False,
        )
        shed_run = run_controlled(_simulator(), config, stream)
        assert shed_run.requests_shed > 0
        assert (
            shed_run.provenance["controller"]["shed_admission"]
            == shed_run.requests_shed
        )
        loose = ControllerConfig(
            policy="target_util", slo_s=0.004, max_chips=2,
            slo_budget_s=10.0, adapt_batching=False,
        )
        keep_run = run_controlled(_simulator(), loose, stream)
        assert keep_run.requests_shed == 0

    def test_shed_counts_land_in_telemetry_windows(self):
        stream = [Request(i, "nvsa", 0.0005 * i) for i in range(100)]
        config = ControllerConfig(
            policy="target_util", slo_s=0.004, max_chips=2,
            adapt_batching=False,
        )
        result = run_controlled(
            _simulator(), config, stream, telemetry_window_s=0.01
        )
        assert result.telemetry is not None
        shed_total = sum(row["shed"] for row in result.telemetry.windows)
        assert shed_total == result.requests_shed


class TestAdaptiveKnobs:
    def test_batching_retunes_and_restores_the_policy(self):
        policy = ContinuousBatching(max_batch_size=2)
        stream = [Request(i, "nvsa", 0.0005 * i) for i in range(150)]
        sim = _simulator(policy=policy)
        config = ControllerConfig(
            policy="target_util", slo_s=0.003, max_chips=2,
            admission=False, batch_max=16,
        )
        result = run_controlled(sim, config, stream)
        info = result.provenance["controller"]
        batch_actions = [
            action for action in info["actions"]
            if action["action"] == "batch"
        ]
        assert batch_actions
        assert info["final_max_batch_size"] != 2 or len(batch_actions) > 1
        # The caller's policy object comes back exactly as configured.
        assert policy.max_batch_size == 2
        assert policy.single_group_cap == 2

    def test_round_robin_upgrades_to_jsq_on_imbalance(self):
        # nvsa is 100x slower than mimonet here, so round-robin piles work
        # on whichever chip drew the slow requests.
        model = FakeServiceModel({"nvsa": 0.1, "mimonet": 0.001,
                                  "lvrf": 0.001, "prae": 0.001})
        sim = ServingSimulator(
            service_model=model,
            fleet=Fleet(num_chips=2, router="round_robin"),
            batching_policy=NoBatching(),
        )
        stream = [
            Request(i, "nvsa" if i % 2 == 0 else "mimonet", 0.001 * i)
            for i in range(120)
        ]
        config = ControllerConfig(
            policy="target_util", max_chips=2, admission=False,
            adapt_batching=False, adapt_routing=True, imbalance_threshold=3,
        )
        result = run_controlled(sim, config, stream)
        info = result.provenance["controller"]
        assert info["final_router"] == "jsq"
        assert any(
            action["action"] == "router" for action in info["actions"]
        )


class TestRunScenarioIntegration:
    def test_scenario_controller_run_meets_conservation(self):
        config = ControllerConfig(policy="target_util")
        scenario, result = run_scenario(
            "flash_crowd", duration_scale=0.2, controller=config
        )
        info = result.provenance["controller"]
        # run_scenario fills the SLO anchor from the scenario.
        assert info["slo_s"] == scenario.slo_s
        assert (
            len(result.records) + result.requests_lost + result.requests_shed
            == result.requests_arrived
        )

    def test_controller_rejects_sessions_and_shards(self):
        config = ControllerConfig()
        with pytest.raises(ServingError, match="closed-loop"):
            run_scenario("session_surge", controller=config)
        with pytest.raises(ServingError, match="shard"):
            run_scenario("flash_crowd", shards=2, controller=config)


class TestControlFrontier:
    def test_flash_crowd_controller_beats_cheapest_static_fleet(self):
        """Acceptance: dynamic frontier strictly left of the static one."""
        from repro.evaluation.serving_experiments import control_frontier

        rows = control_frontier(scenarios=("flash_crowd",))
        by_policy = {row["policy"]: row for row in rows}
        static = by_policy["static"]
        assert static["meets_slo"]
        for policy in ("target_util", "queue_pid"):
            dynamic = by_policy[policy]
            assert dynamic["meets_slo"]
            assert dynamic["p99_ms"] <= dynamic["slo_ms"]
            assert dynamic["peak_chips"] < static["chips"]

    def test_frontier_validates_parameters(self):
        from repro.evaluation.serving_experiments import control_frontier

        with pytest.raises(ServingError, match="max_chips"):
            control_frontier(max_chips=0)
        with pytest.raises(ServingError, match="min_served_frac"):
            control_frontier(min_served_frac=0.0)
        with pytest.raises(ServingError, match="unknown controller policy"):
            control_frontier(policies=("nope",))


class TestServeCliFlags:
    def test_controller_smoke_run_reports_provenance(self, capsys):
        assert main([
            "serve", "flash_crowd", "--controller", "target_util",
            "--smoke", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        info = payload["provenance"]["controller"]
        assert info["policy"] == "target_util"
        assert info["scale_ups"] > 0

    @pytest.mark.parametrize("argv", [
        # controller-specific combinations
        ["serve", "steady", "--controller", "target_util", "--shards", "2"],
        ["serve", "steady", "--controller", "target_util", "--sessions"],
        ["serve", "steady", "--controller", "target_util", "--users", "4"],
        ["serve", "steady", "--controller", "target_util", "--profile"],
        ["serve", "--list", "--controller", "target_util"],
        ["serve", "--smoke", "--controller", "target_util"],
        ["serve", "steady,diurnal", "--controller", "target_util"],
        ["serve", "steady", "--control-interval-ms", "20"],
        ["serve", "steady", "--controller", "target_util",
         "--control-interval-ms", "0"],
        ["serve", "steady", "--controller", "target_util",
         "--record", "t.jsonl"],
        # pre-existing closed-loop inconsistencies the controller multiplies
        ["serve", "--trace", "t.jsonl", "--sessions"],
        ["serve", "--trace", "t.jsonl", "--controller", "target_util"],
        ["serve", "steady", "--sessions", "--shards", "2"],
    ])
    def test_inconsistent_flag_combos_exit_with_one_line_errors(
        self, argv, capsys
    ):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
