"""Tests for per-phase profiling and the serve CLI's new flags."""

import json

import pytest

from repro.cli import main
from repro.errors import ServingError
from repro.serving.profile import profile_scenario

PHASES = (
    "traffic generation",
    "policy plan",
    "route",
    "service lookup",
    "event core (other)",
    "metrics finalize",
)


class TestProfileScenario:
    def test_breakdown_covers_every_phase(self):
        payload = profile_scenario("steady", load_scale=0.2, duration_scale=0.2)
        assert tuple(row["phase"] for row in payload["phases"]) == PHASES
        by_phase = {row["phase"]: row for row in payload["phases"]}
        # The instrumented phases were actually consulted per event.
        assert by_phase["policy plan"]["calls"] > 0
        assert by_phase["route"]["calls"] == payload["num_requests"]
        assert by_phase["service lookup"]["calls"] > 0
        assert all(row["seconds"] >= 0 for row in payload["phases"])
        shares = sum(row["share_pct"] for row in payload["phases"])
        assert shares == pytest.approx(100.0, abs=1.0)
        assert payload["uninstrumented_run_s"] > 0
        assert payload["scenario"] == "steady"

    def test_overrides_flow_through(self):
        payload = profile_scenario(
            "steady",
            load_scale=0.2,
            duration_scale=0.2,
            num_chips=3,
            router="round_robin",
            policy="none",
        )
        assert payload["num_chips"] == 3
        assert payload["router"] == "round_robin"
        assert payload["policy"] == "none"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ServingError, match="unknown scenario"):
            profile_scenario("nope")

    def test_bad_scales_rejected(self):
        with pytest.raises(ServingError, match="must be positive"):
            profile_scenario("steady", load_scale=0.0)

    def test_sharded_profile_aggregates_phase_timings(self):
        payload = profile_scenario(
            "steady",
            load_scale=0.2,
            duration_scale=0.2,
            num_chips=4,
            router="round_robin",
            shards=4,
        )
        assert payload["shards"] == 4
        assert payload["shards_effective"] == 4
        assert "shard_fallback" not in payload
        by_phase = {row["phase"]: row for row in payload["phases"]}
        # Policy and model timings aggregate across all four shard engines;
        # routing is inlined per component, so its phase stays empty.
        assert by_phase["policy plan"]["calls"] > 0
        assert by_phase["service lookup"]["calls"] > 0
        assert by_phase["route"]["calls"] == 0

    def test_sharded_profile_reports_fallback(self):
        # jsq couples every chip, so the sharded engine cannot factor it.
        payload = profile_scenario(
            "steady", load_scale=0.2, duration_scale=0.2, shards=2
        )
        assert payload["shards"] == 2
        assert payload["shards_effective"] == 1
        assert "couples every chip" in payload["shard_fallback"]


class TestServeCLIFlags:
    def test_serve_profile_json(self, capsys):
        assert main([
            "serve", "steady", "--profile", "--load-scale", "0.2",
            "--duration-scale", "0.2", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert tuple(row["phase"] for row in payload["phases"]) == PHASES

    def test_serve_profile_markdown(self, capsys):
        assert main([
            "serve", "steady", "--profile", "--load-scale", "0.2",
            "--duration-scale", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "## Profile — scenario 'steady'" in out
        assert "event core (other)" in out
        assert "fast-path speedup (x)" in out

    def test_serve_profile_shards_json(self, capsys):
        assert main([
            "serve", "steady", "--profile", "--chips", "4",
            "--router", "round_robin", "--shards", "2",
            "--load-scale", "0.2", "--duration-scale", "0.2",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 2
        assert payload["shards_effective"] == 4
        assert tuple(row["phase"] for row in payload["phases"]) == PHASES

    def test_serve_shards_records_provenance(self, capsys):
        assert main([
            "serve", "steady", "--chips", "4", "--router", "round_robin",
            "--shards", "2", "--load-scale", "0.2", "--duration-scale", "0.2",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["provenance"]["shards"] == 2
        assert payload["provenance"]["shards_effective"] == 4

    @pytest.mark.parametrize(
        "argv",
        (
            ["serve", "--list", "--shards", "2"],
            ["serve", "--smoke", "--profile"],
            ["serve", "steady", "--shard-workers", "2"],
            ["serve", "steady", "--record", "x.jsonl", "--shards", "2"],
            ["serve", "steady", "--profile", "--backend", "cogsys,a100"],
        ),
        ids=(
            "list-shards", "smoke-profile",
            "workers-without-shards", "record-shards", "profile-hetero",
        ),
    )
    def test_stray_flag_combinations_rejected(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err
