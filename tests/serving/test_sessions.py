"""Closed-loop session traffic tests: determinism and latency feedback.

The sessions engine replaces the pre-generated arrival stream with a
fixed user population whose next request is born from the previous
completion plus think time.  Two properties define it:

* **Determinism** — the trace is a pure function of the seed: same seed,
  same records and telemetry; different seed, different trace.
* **Feedback** — offered load responds to latency: slowing the service
  model down can only lower the realized request rate, monotonically.

Chaos composes with the loop — a dropped request unblocks its user at
the drop instant, and conservation over *submitted* requests holds — and
an unrecovered outage strands users mid-conversation by design.
"""

import math

import pytest

from repro.errors import ServingError
from repro.serving.batching import ContinuousBatching
from repro.serving.chaos import ChaosTimeline, chip_failure, power_cap
from repro.serving.fleet import Fleet
from repro.serving.scenarios import run_scenario
from repro.serving.sessions import SessionConfig, run_sessions
from repro.serving.simulator import ServingSimulator

WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")


class SessionFakeModel:
    """Deterministic per-workload service times with a slowdown knob."""

    scheduler = "fake"
    cached_reports = 0

    BASE = {"lvrf": 0.8, "mimonet": 0.2, "nvsa": 1.0, "prae": 0.5}

    def __init__(self, scale=1.0):
        self.scale = scale

    def service_seconds(self, workload, batch_size):
        return self.BASE[workload] * (0.005 + 0.005 * batch_size) * self.scale

    def energy_joules(self, workload, batch_size):
        return self.service_seconds(workload, batch_size)


def _simulator(scale=1.0, num_chips=2, router="jsq", policy=None, chaos=None):
    return ServingSimulator(
        service_model=SessionFakeModel(scale),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=policy or ContinuousBatching(max_batch_size=4),
        chaos=chaos,
    )


def _config(**overrides):
    base = dict(
        users=12, turns=3, sessions_per_user=2,
        think_time_s=0.01, session_gap_s=0.02, start_spread_s=0.1,
        mix=tuple((name, 1.0) for name in WORKLOADS),
    )
    base.update(overrides)
    return SessionConfig(**base)


def _rows(result):
    return [
        [r.request_id, r.workload, r.chip, r.arrival_s, r.dispatch_s,
         r.finish_s, r.batch_size]
        for r in result.records
    ]


class TestSessionConfig:
    def test_population_knobs_are_validated(self):
        with pytest.raises(ServingError, match="users"):
            SessionConfig(users=0)
        with pytest.raises(ServingError, match="turns"):
            SessionConfig(users=1, turns=0)
        with pytest.raises(ServingError, match="sessions_per_user"):
            SessionConfig(users=1, sessions_per_user=0)
        with pytest.raises(ServingError, match="think_time_s"):
            SessionConfig(users=1, think_time_s=-0.1)
        with pytest.raises(ServingError, match="session_gap_s"):
            SessionConfig(users=1, session_gap_s=math.inf)

    def test_mix_is_normalized_and_validated(self):
        config = SessionConfig(users=1, mix=(("b", 3.0), ("a", 1.0)))
        assert config.mix == (("a", 0.25), ("b", 0.75))
        with pytest.raises(ServingError, match="at least one"):
            SessionConfig(users=1, mix=())
        with pytest.raises(ServingError, match="non-negative"):
            SessionConfig(users=1, mix=(("a", -1.0),))
        with pytest.raises(ServingError, match="positive"):
            SessionConfig(users=1, mix=(("a", 0.0),))

    def test_total_requests_counts_the_whole_population(self):
        assert _config().total_requests == 12 * 3 * 2

    def test_scaled_maps_the_serve_knobs_onto_the_population(self):
        config = _config()
        scaled = config.scaled(2.0, 3.0)
        assert scaled.users == 24
        assert scaled.sessions_per_user == 6
        assert scaled.turns == config.turns
        # Scaling floors at one user / one conversation.
        tiny = config.scaled(0.01, 0.01)
        assert tiny.users == 1
        assert tiny.sessions_per_user == 1
        assert config.scaled(1.0, 1.0) is config
        with pytest.raises(ServingError, match="positive"):
            config.scaled(0.0, 1.0)

    def test_to_dict_round_trips_through_the_constructor(self):
        config = _config()
        clone = SessionConfig(**{
            key: (tuple(value.items()) if key == "mix" else value)
            for key, value in config.to_dict().items()
        })
        assert clone == config


class TestClosedLoopDeterminism:
    def test_same_seed_same_trace(self):
        config = _config()
        first = run_sessions(
            _simulator(), config, seed=7, telemetry_window_s=0.05
        )
        second = run_sessions(
            _simulator(), config, seed=7, telemetry_window_s=0.05
        )
        assert _rows(first) == _rows(second)
        assert first.chip_busy_s == second.chip_busy_s
        assert first.energy_joules == second.energy_joules
        assert first.telemetry.windows == second.telemetry.windows

    def test_different_seed_different_trace(self):
        config = _config()
        first = run_sessions(_simulator(), config, seed=7)
        other = run_sessions(_simulator(), config, seed=8)
        assert _rows(first) != _rows(other)

    def test_records_are_in_submission_order_and_causal(self):
        result = run_sessions(_simulator(), _config(), seed=3)
        ids = [record.request_id for record in result.records]
        assert ids == sorted(ids)
        for record in result.records:
            assert record.arrival_s <= record.dispatch_s <= record.finish_s

    def test_full_population_completes_without_chaos(self):
        config = _config()
        result = run_sessions(_simulator(), config, seed=1)
        assert len(result.records) == config.total_requests
        assert result.requests_lost == 0
        assert result.requests_shed == 0
        assert result.provenance["closed_loop"]["seed"] == 1
        assert result.provenance["closed_loop"]["users"] == config.users

    def test_config_type_is_checked(self):
        with pytest.raises(ServingError, match="SessionConfig"):
            run_sessions(_simulator(), {"users": 4})


class TestLatencyFeedback:
    def test_offered_load_backs_off_as_latency_grows(self):
        """Slower chips ⇒ slower users: realized rps is non-increasing."""
        config = _config(users=16, turns=4)
        rates = []
        for scale in (1.0, 2.0, 4.0, 8.0):
            result = run_sessions(_simulator(scale=scale), config, seed=5)
            assert len(result.records) == config.total_requests
            rates.append(result.num_requests / result.horizon_s)
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        # And strictly lower at the extremes: the feedback is real.
        assert rates[-1] < rates[0]

    def test_think_time_lowers_offered_load(self):
        fast = run_sessions(
            _simulator(), _config(think_time_s=0.0, session_gap_s=0.0),
            seed=5,
        )
        slow = run_sessions(
            _simulator(), _config(think_time_s=0.1, session_gap_s=0.1),
            seed=5,
        )
        assert (
            slow.num_requests / slow.horizon_s
            < fast.num_requests / fast.horizon_s
        )


class TestSessionsUnderChaos:
    def test_conservation_holds_through_an_outage(self):
        chaos = ChaosTimeline((
            chip_failure(0, 0.05, 0.1), power_cap(0.2, 0.1, 3.0),
        ))
        config = _config(users=24, think_time_s=0.002, session_gap_s=0.002,
                         start_spread_s=0.02)
        result = run_sessions(_simulator(chaos=chaos), config, seed=2)
        assert result.requests_lost + result.requests_shed > 0
        # Conservation over *submitted* requests: every submission is
        # completed, lost or shed (dropped users resubmit after thinking).
        assert (
            len(result.records) + result.requests_lost + result.requests_shed
            == result.requests_arrived
        )
        assert any(e["kind"] == "fail" for e in result.incidents)
        assert any(e["kind"] == "recover" for e in result.incidents)

    def test_unrecovered_outage_strands_users_mid_conversation(self):
        chaos = ChaosTimeline((chip_failure(0, 0.02, math.inf),))
        config = _config(users=8, start_spread_s=0.01)
        result = run_sessions(
            _simulator(num_chips=1, chaos=chaos), config, seed=0
        )
        # The chip never recovers: stranded users stop submitting, so
        # fewer requests than the population offers — but every submitted
        # one is accounted for.
        assert result.requests_arrived < config.total_requests
        assert result.requests_shed > 0
        assert any(e["kind"] == "stranded" for e in result.incidents)
        assert all(r.finish_s <= 0.02 for r in result.records)


class TestScenarioIntegration:
    def test_session_surge_preset_runs_closed_loop(self):
        scenario, result = run_scenario(
            "session_surge", seed=4, load_scale=0.1, duration_scale=0.5,
        )
        assert scenario.sessions is not None
        closed = result.provenance["closed_loop"]
        assert closed["users"] == max(1, round(scenario.sessions.users * 0.1))
        assert result.num_requests > 0
        assert 0.0 < result.utilization <= 1.0

    def test_session_override_replaces_open_loop_traffic(self):
        override = _config(users=4, turns=2, sessions_per_user=1,
                           mix=(("nvsa", 1.0),))
        _, result = run_scenario("steady", sessions=override)
        assert result.provenance["closed_loop"]["users"] == 4
        assert result.num_requests == override.total_requests

    def test_closed_loop_runs_refuse_to_shard(self):
        with pytest.raises(ServingError, match="do not shard"):
            run_scenario("session_surge", load_scale=0.05, shards=2)
