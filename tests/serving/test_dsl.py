"""Tests for the scenario DSL (phases, compilation, preset equivalence)."""

import pytest

from repro.errors import ServingError
from repro.serving.dsl import (
    ScenarioSpec,
    burst,
    drain,
    mix_shift,
    ramp,
    steady,
)
from repro.serving.scenarios import (
    SCENARIOS,
    get_scenario,
    register_scenario,
)
from repro.serving.traffic import (
    MMPPArrivals,
    PoissonArrivals,
    WorkloadMix,
    concatenate_segments,
)


class TestPhaseValidation:
    def test_rates_and_durations_must_be_positive(self):
        with pytest.raises(ServingError):
            steady(0.0, duration_s=1.0)
        with pytest.raises(ServingError):
            steady(100.0, duration_s=0.0)
        with pytest.raises(ServingError):
            ramp(0.0, 100.0, duration_s=1.0)
        with pytest.raises(ServingError):
            burst(100.0, 0.0, duration_s=1.0)
        with pytest.raises(ServingError):
            mix_shift(-1.0, 1.0, {"nvsa": 1.0}, {"prae": 1.0})

    def test_unknown_workloads_fail_at_definition_time(self):
        with pytest.raises(ServingError, match="unknown workloads"):
            steady(100.0, duration_s=1.0, mix={"bogus": 1.0})

    def test_spec_needs_traffic(self):
        with pytest.raises(ServingError, match="no phases"):
            ScenarioSpec(name="empty", description="", phases=())
        with pytest.raises(ServingError, match="all drain"):
            ScenarioSpec(
                name="silent", description="", phases=(drain(1.0), drain(2.0))
            )


class TestCompilation:
    def test_single_steady_phase_equals_plain_poisson(self):
        """A one-phase spec uses the seed directly — byte-equal streams."""
        spec = ScenarioSpec(
            name="unit", description="", phases=(steady(800.0, duration_s=1.0),)
        )
        direct = PoissonArrivals(800.0, WorkloadMix.uniform()).generate(
            1.0, seed=5
        )
        assert spec.build_traffic(seed=5) == direct

    def test_chained_phases_follow_concatenate_semantics(self):
        """Multi-phase specs sub-seed exactly like concatenate_segments."""
        spec = ScenarioSpec(
            name="chained",
            description="",
            phases=(
                steady(400.0, duration_s=0.5),
                steady(1200.0, duration_s=0.5),
            ),
        )
        mix = WorkloadMix.uniform()
        reference = concatenate_segments(
            [
                (PoissonArrivals(400.0, mix), 0.5),
                (PoissonArrivals(1200.0, mix), 0.5),
            ],
            seed=11,
        )
        assert spec.build_traffic(seed=11) == reference

    def test_load_and_duration_scales_apply(self):
        spec = ScenarioSpec(
            name="scaled", description="",
            phases=(steady(1000.0, duration_s=1.0),),
        )
        base = spec.build_traffic(seed=0)
        doubled = spec.build_traffic(seed=0, duration_scale=2.0)
        heavier = spec.build_traffic(seed=0, load_scale=3.0)
        assert max(r.arrival_s for r in doubled) > max(
            r.arrival_s for r in base
        )
        assert len(heavier) > 2 * len(base)

    def test_drain_leaves_a_silent_gap(self):
        spec = ScenarioSpec(
            name="gapped",
            description="",
            phases=(
                steady(2000.0, duration_s=0.5),
                drain(1.0),
                steady(2000.0, duration_s=0.5),
            ),
        )
        requests = spec.build_traffic(seed=3)
        in_gap = [r for r in requests if 0.5 <= r.arrival_s < 1.5]
        after = [r for r in requests if r.arrival_s >= 1.5]
        assert not in_gap
        assert after

    def test_ramp_rate_increases_over_the_phase(self):
        spec = ScenarioSpec(
            name="ramped",
            description="",
            phases=(ramp(200.0, 4000.0, duration_s=2.0, steps=8),),
        )
        requests = spec.build_traffic(seed=1)
        first_half = sum(1 for r in requests if r.arrival_s < 1.0)
        second_half = len(requests) - first_half
        assert second_half > 2 * first_half

    def test_mix_shift_interpolates_the_workload_mix(self):
        spec = ScenarioSpec(
            name="shifting",
            description="",
            phases=(
                mix_shift(
                    3000.0,
                    duration_s=2.0,
                    mix_from={"nvsa": 1.0},
                    mix_to={"mimonet": 1.0},
                    steps=4,
                ),
            ),
        )
        requests = spec.build_traffic(seed=2)
        early = [r.workload for r in requests if r.arrival_s < 0.5]
        late = [r.workload for r in requests if r.arrival_s >= 1.5]
        assert early.count("nvsa") > early.count("mimonet")
        assert late.count("mimonet") > late.count("nvsa")

    def test_ids_are_contiguous_and_sorted_across_phases(self):
        spec = ScenarioSpec(
            name="ordered",
            description="",
            phases=(
                burst(500.0, 2000.0, duration_s=0.5),
                drain(0.2),
                steady(800.0, duration_s=0.5),
            ),
        )
        requests = spec.build_traffic(seed=4)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)


class TestPresetEquivalence:
    """The DSL re-expressions reproduce the original preset builders."""

    def test_steady_matches_the_original_builder(self):
        direct = PoissonArrivals(2400.0 * 1.3, WorkloadMix.uniform()).generate(
            2.0 * 0.2, seed=6
        )
        assert get_scenario("steady").traffic(6, 1.3, 0.2) == direct

    def test_flash_crowd_matches_the_original_builder(self):
        process = MMPPArrivals(
            normal_rate_rps=300.0,
            burst_rate_rps=4000.0,
            mix=WorkloadMix.uniform(),
            mean_normal_s=0.5,
            mean_burst_s=0.15,
        )
        direct = process.generate(2.0 * 0.2, seed=8)
        assert get_scenario("flash_crowd").traffic(8, 1.0, 0.2) == direct

    def test_diurnal_matches_the_original_builder(self):
        mix = WorkloadMix.uniform()
        reference = concatenate_segments(
            [
                (PoissonArrivals(400.0, mix), 0.6 * 0.2),
                (PoissonArrivals(2800.0, mix), 1.0 * 0.2),
                (PoissonArrivals(400.0, mix), 0.6 * 0.2),
            ],
            seed=12,
        )
        assert get_scenario("diurnal").traffic(12, 1.0, 0.2) == reference

    def test_every_preset_carries_its_spec(self):
        for scenario in SCENARIOS.values():
            assert scenario.spec is not None
            assert scenario.spec.name == scenario.name


class TestRegistration:
    def test_registered_scenarios_run_like_presets(self):
        from repro.serving.scenarios import run_scenario

        spec = ScenarioSpec(
            name="test_custom_surge",
            description="unit-test scenario",
            phases=(
                steady(1500.0, duration_s=0.3),
                burst(500.0, 3000.0, duration_s=0.3),
            ),
            num_chips=2,
        )
        try:
            register_scenario(spec)
            scenario, result = run_scenario("test_custom_surge", seed=1)
            assert scenario.spec is spec
            assert result.num_requests > 0
        finally:
            SCENARIOS.pop("test_custom_surge", None)

    def test_duplicate_names_need_replace(self):
        spec = ScenarioSpec(
            name="steady", description="impostor",
            phases=(steady(10.0, duration_s=0.1),),
        )
        with pytest.raises(ServingError, match="already exists"):
            register_scenario(spec)
