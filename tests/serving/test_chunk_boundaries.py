"""Chunk-boundary regression tests for the streaming event core.

``run_stream`` consumes columnar chunks of arbitrary sizes; degenerate
boundaries — one-request chunks, empty chunks injected mid-stream,
mismatched column lengths hiding behind an empty first column — must
either work identically to one big chunk or fail loudly.  These pin the
fix where a zero-length first column used to short-circuit the
column-length validation.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.batching import ContinuousBatching
from repro.serving.fleet import Fleet
from repro.serving.simulator import ServingSimulator, columnar_chunks
from repro.serving.traffic import Request

WORKLOADS = ("lvrf", "mimonet", "nvsa", "prae")


class _Model:
    scheduler = "fake"
    cached_reports = 0

    BASE = {"lvrf": 0.8, "mimonet": 0.2, "nvsa": 1.0, "prae": 0.5}

    def service_seconds(self, workload, batch_size):
        return self.BASE[workload] * (0.05 + 0.05 * batch_size)

    def energy_joules(self, workload, batch_size):
        return self.service_seconds(workload, batch_size)


def _stream(n=50):
    entries = sorted(
        ((i * 37 % 499) / 499.0, WORKLOADS[i % len(WORKLOADS)])
        for i in range(n)
    )
    return [
        Request(request_id=index, workload=workload, arrival_s=arrival)
        for index, (arrival, workload) in enumerate(entries)
    ]


def _simulator(num_chips=2, router="round_robin"):
    return ServingSimulator(
        service_model=_Model(),
        fleet=Fleet(num_chips=num_chips, router=router),
        batching_policy=ContinuousBatching(max_batch_size=4),
    )


def _assert_stream_equal(base, other, num_chips):
    for chip in range(num_chips):
        assert np.array_equal(other.chip_latency_s[chip], base.chip_latency_s[chip])
    assert np.array_equal(other.latency_values(), base.latency_values())
    assert other.chip_busy_s == base.chip_busy_s
    assert other.num_requests == base.num_requests
    assert other.num_batches == base.num_batches
    assert other.horizon_s == base.horizon_s


class TestChunkBoundaries:
    @pytest.mark.parametrize("chunk_size", (1, 2, 3, 7))
    @pytest.mark.parametrize("shards", (1, 2))
    def test_tiny_chunks_match_one_big_chunk(self, chunk_size, shards):
        stream = _stream()
        sim = _simulator()
        base = sim.run_stream(columnar_chunks(stream, len(stream)), WORKLOADS)
        tiny = sim.run_stream(
            columnar_chunks(stream, chunk_size), WORKLOADS, shards=shards
        )
        _assert_stream_equal(base, tiny, sim.fleet.num_chips)

    @pytest.mark.parametrize("shards", (1, 2))
    def test_empty_chunks_are_skipped(self, shards):
        stream = _stream(n=9)
        sim = _simulator()
        base = sim.run_stream(columnar_chunks(stream, len(stream)), WORKLOADS)
        chunks = [([], [], [])]
        for chunk in columnar_chunks(stream, 3):
            chunks.extend([chunk, ([], [], [])])
        padded = sim.run_stream(iter(chunks), WORKLOADS, shards=shards)
        _assert_stream_equal(base, padded, sim.fleet.num_chips)

    @pytest.mark.parametrize("shards", (1, 2))
    def test_single_request_stream(self, shards):
        sim = _simulator()
        result = sim.run_stream(
            [([0.25], ["nvsa"], [7])], WORKLOADS, shards=shards
        )
        assert result.num_requests == 1
        assert result.latency_values().shape == (1,)

    @pytest.mark.parametrize("shards", (1, 2))
    @pytest.mark.parametrize(
        "chunk",
        (
            ([], [0.0], []),
            ([0.0], [], [0]),
            ([0.0], ["nvsa"], []),
            ([0.0, 0.1], ["nvsa"], [0, 1]),
        ),
        ids=("empty-arrivals", "empty-workloads", "empty-ids", "short-names"),
    )
    def test_mismatched_columns_fail_loudly(self, chunk, shards):
        # A zero-length column must not make the chunk look empty and skip
        # validation: mismatched lengths are a malformed stream, always.
        sim = _simulator()
        fixed_chunk = (
            [float(value) for value in chunk[0]],
            [str(name) for name in chunk[1]],
            list(chunk[2]),
        )
        with pytest.raises(ServingError, match="mismatched column lengths"):
            sim.run_stream(
                [([0.0], ["nvsa"], [99]), fixed_chunk],
                WORKLOADS,
                shards=shards,
            )

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ServingError, match="chunk_size must be positive"):
            list(columnar_chunks(_stream(n=3), 0))
