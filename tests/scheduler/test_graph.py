"""Tests for the operation graph used by the schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.scheduler import OperationGraph
from repro.workloads import Workload, build_nvsa_workload
from repro.workloads.builders import gemm_kernel


class TestOperationGraph:
    def test_ready_kernels_respect_dependencies(self):
        workload = build_nvsa_workload()
        graph = OperationGraph(workload)
        ready_names = {kernel.name for kernel in graph.ready_kernels()}
        assert any("conv0" in name for name in ready_names)
        assert not any("symb" in name for name in ready_names)

    def test_marking_complete_unlocks_dependents(self):
        a = gemm_kernel("a", 2, 2, 2)
        b = gemm_kernel("b", 2, 2, 2, depends_on=("a",))
        graph = OperationGraph(Workload(name="toy", kernels=[a, b]))
        assert [k.name for k in graph.ready_kernels()] == ["a"]
        graph.mark_complete("a")
        assert [k.name for k in graph.ready_kernels()] == ["b"]
        graph.mark_complete("b")
        assert graph.all_complete

    def test_exclude_running_kernels(self):
        a = gemm_kernel("a", 2, 2, 2)
        b = gemm_kernel("b", 2, 2, 2)
        graph = OperationGraph(Workload(name="toy", kernels=[a, b]))
        assert len(graph.ready_kernels(exclude={"a"})) == 1

    def test_cycle_detection(self):
        a = gemm_kernel("a", 2, 2, 2, depends_on=("b",))
        b = gemm_kernel("b", 2, 2, 2, depends_on=("a",))
        with pytest.raises(SchedulingError):
            OperationGraph(Workload(name="cycle", kernels=[a, b]))

    def test_unknown_kernel_rejected(self):
        graph = OperationGraph(Workload(name="toy", kernels=[gemm_kernel("a", 2, 2, 2)]))
        with pytest.raises(SchedulingError):
            graph.mark_complete("ghost")
        with pytest.raises(SchedulingError):
            graph.kernel("ghost")

    def test_critical_path_length(self):
        a = gemm_kernel("a", 2, 2, 2)
        b = gemm_kernel("b", 2, 2, 2, depends_on=("a",))
        c = gemm_kernel("c", 2, 2, 2)
        graph = OperationGraph(Workload(name="toy", kernels=[a, b, c]))
        assert graph.critical_path_length(lambda kernel: 10) == 20
