"""Tests for the sequential and adaptive (adSCH) schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.scheduler import AdaptiveScheduler, SequentialScheduler
from repro.workloads import Stage, Workload, build_nvsa_workload
from repro.workloads.builders import circconv_kernel, elementwise_kernel, gemm_kernel


def _unit_cycle_model(kernel, num_cells):
    """A fixed-duration cycle model (independent of cells) for scheduler tests.

    Keeping the duration independent of the allocation isolates the effect of
    overlap: any makespan reduction must come from running independent
    kernels concurrently, not from giving one kernel more cells.
    """
    return max(1, kernel.flops // 1000)


def _two_task_workload():
    kernels = []
    for task in range(2):
        neural = gemm_kernel(f"t{task}/neural", m=64, k=64, n=64, task_id=task)
        symbolic = circconv_kernel(
            f"t{task}/symbolic", vector_dim=64, count=8, task_id=task,
            depends_on=(neural.name,),
        )
        post = elementwise_kernel(
            f"t{task}/post", elements=1000, task_id=task, depends_on=(symbolic.name,)
        )
        kernels.extend([neural, symbolic, post])
    return Workload(name="two_tasks", kernels=kernels)


class TestSequentialScheduler:
    def test_total_is_sum_of_kernel_durations(self):
        workload = _two_task_workload()
        scheduler = SequentialScheduler(_unit_cycle_model, num_cells=16)
        result = scheduler.schedule(workload)
        assert result.total_cycles == sum(entry.duration for entry in result.entries)
        assert len(result.entries) == len(workload)

    def test_entries_do_not_overlap(self):
        result = SequentialScheduler(_unit_cycle_model, 16).schedule(_two_task_workload())
        ordered = sorted(result.entries, key=lambda e: e.start_cycle)
        for previous, current in zip(ordered[:-1], ordered[1:]):
            assert current.start_cycle >= previous.end_cycle

    def test_invalid_cell_count_rejected(self):
        with pytest.raises(SchedulingError):
            SequentialScheduler(_unit_cycle_model, 0)


class TestAdaptiveScheduler:
    def test_all_kernels_scheduled_and_dependencies_respected(self):
        workload = _two_task_workload()
        result = AdaptiveScheduler(_unit_cycle_model, num_cells=16).schedule(workload)
        assert len(result.entries) == len(workload)
        for kernel in workload:
            entry = result.entry(kernel.name)
            for dependency in kernel.depends_on:
                assert result.entry(dependency).end_cycle <= entry.start_cycle

    def test_independent_tasks_overlap(self):
        workload = _two_task_workload()
        sequential = SequentialScheduler(_unit_cycle_model, 16).schedule(workload)
        adaptive = AdaptiveScheduler(_unit_cycle_model, 16).schedule(workload)
        assert adaptive.total_cycles < sequential.total_cycles

    def test_cell_capacity_never_exceeded(self):
        workload = build_nvsa_workload(num_tasks=2)
        from repro.hardware import CogSysAccelerator

        accelerator = CogSysAccelerator()
        result = AdaptiveScheduler(accelerator.kernel_cycles, 16).schedule(workload)
        events = sorted({entry.start_cycle for entry in result.entries})
        for time in events:
            in_flight = sum(
                entry.cells_used
                for entry in result.entries
                if entry.start_cycle <= time < entry.end_cycle and not entry.uses_simd
            )
            assert in_flight <= 16

    def test_simd_kernels_do_not_use_cells(self):
        result = AdaptiveScheduler(_unit_cycle_model, 16).schedule(_two_task_workload())
        for entry in result.entries:
            if entry.uses_simd:
                assert entry.cells_used == 0

    def test_occupancy_and_stage_cycles(self):
        result = AdaptiveScheduler(_unit_cycle_model, 16).schedule(_two_task_workload())
        assert 0 < result.array_occupancy <= 1
        assert result.stage_cycles(Stage.NEURAL) > 0
        assert result.stage_cycles(Stage.SYMBOLIC) > 0

    def test_unknown_entry_lookup_rejected(self):
        result = AdaptiveScheduler(_unit_cycle_model, 16).schedule(_two_task_workload())
        with pytest.raises(SchedulingError):
            result.entry("ghost")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SchedulingError):
            AdaptiveScheduler(_unit_cycle_model, num_cells=0)
        with pytest.raises(SchedulingError):
            AdaptiveScheduler(_unit_cycle_model, num_cells=4, min_symbolic_cells=0)
