"""Tests for attribute PMFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TaskGenerationError
from repro.symbolic import AttributePMF

VALUES = ("a", "b", "c", "d")


class TestConstruction:
    def test_delta_puts_all_mass_on_value(self):
        pmf = AttributePMF.delta("attr", VALUES, "c")
        assert pmf.is_delta
        assert pmf.probability_of("c") == 1.0
        assert pmf.most_likely == "c"

    def test_uniform_has_equal_mass_and_max_entropy(self):
        pmf = AttributePMF.uniform("attr", VALUES)
        assert pmf.probability_of("a") == pytest.approx(0.25)
        assert pmf.entropy == pytest.approx(2.0)

    def test_from_index_distribution_normalises(self):
        pmf = AttributePMF.from_index_distribution("attr", VALUES, np.array([1.0, 1.0, 2.0, 0.0]))
        assert pmf.probability_of("c") == pytest.approx(0.5)

    def test_unnormalised_probabilities_rejected(self):
        with pytest.raises(TaskGenerationError):
            AttributePMF("attr", VALUES, np.array([0.5, 0.5, 0.5, 0.5]))

    def test_negative_probabilities_rejected(self):
        with pytest.raises(TaskGenerationError):
            AttributePMF("attr", VALUES, np.array([1.2, -0.2, 0.0, 0.0]))

    def test_wrong_length_rejected(self):
        with pytest.raises(TaskGenerationError):
            AttributePMF("attr", VALUES, np.array([1.0]))

    def test_delta_with_unknown_value_rejected(self):
        with pytest.raises(TaskGenerationError):
            AttributePMF.delta("attr", VALUES, "z")

    def test_zero_weight_distribution_rejected(self):
        with pytest.raises(TaskGenerationError):
            AttributePMF.from_index_distribution("attr", VALUES, np.zeros(4))


class TestAlgebra:
    def test_dot_is_high_for_matching_deltas(self):
        a = AttributePMF.delta("attr", VALUES, "b")
        b = AttributePMF.delta("attr", VALUES, "b")
        c = AttributePMF.delta("attr", VALUES, "d")
        assert a.dot(b) == 1.0
        assert a.dot(c) == 0.0

    def test_mix_interpolates(self):
        a = AttributePMF.delta("attr", VALUES, "a")
        b = AttributePMF.delta("attr", VALUES, "b")
        mixed = a.mix(b, weight=0.25)
        assert mixed.probability_of("a") == pytest.approx(0.25)
        assert mixed.probability_of("b") == pytest.approx(0.75)

    def test_mix_rejects_bad_weight(self):
        a = AttributePMF.delta("attr", VALUES, "a")
        with pytest.raises(TaskGenerationError):
            a.mix(a, weight=1.5)

    def test_different_domains_rejected(self):
        a = AttributePMF.delta("attr", VALUES, "a")
        b = AttributePMF.delta("attr", ("x", "y"), "x")
        with pytest.raises(TaskGenerationError):
            a.dot(b)

    @settings(max_examples=30, deadline=None)
    @given(weights=st.lists(st.floats(0.01, 10), min_size=4, max_size=4))
    def test_property_entropy_bounded(self, weights):
        pmf = AttributePMF.from_index_distribution("attr", VALUES, np.array(weights))
        assert 0.0 <= pmf.entropy <= 2.0 + 1e-9
        assert pmf.probabilities.sum() == pytest.approx(1.0)
