"""Tests for the RPM rule library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TaskGenerationError
from repro.symbolic import (
    ArithmeticRule,
    ConstantRule,
    DistributeThreeRule,
    LogicalRule,
    ProgressionRule,
    default_rule_library,
    logical_rule_library,
)


class TestConstantRule:
    def test_consistent_and_predict(self):
        rule = ConstantRule()
        assert rule.consistent_row((2, 2, 2), 5)
        assert not rule.consistent_row((2, 2, 3), 5)
        assert rule.predict(4, 4, 5) == 4
        assert rule.predict(4, 3, 5) is None


class TestProgressionRule:
    @pytest.mark.parametrize("step", [1, 2, -1, -2])
    def test_consistent_rows(self, step):
        rule = ProgressionRule(step)
        start = 4
        row = (start, start + step, start + 2 * step)
        assert rule.consistent_row(row, 10)
        assert rule.predict(row[0], row[1], 10) == row[2]

    def test_prediction_outside_domain_is_none(self):
        rule = ProgressionRule(2)
        assert rule.predict(6, 8, 10) is None  # 10 is out of range

    def test_zero_step_rejected(self):
        with pytest.raises(TaskGenerationError):
            ProgressionRule(0)

    def test_names_are_unique(self):
        assert ProgressionRule(1).name != ProgressionRule(-1).name


class TestArithmeticRule:
    def test_plus_and_minus(self):
        plus = ArithmeticRule(subtract=False)
        minus = ArithmeticRule(subtract=True)
        assert plus.predict(2, 3, 10) == 5
        assert minus.predict(7, 3, 10) == 4
        assert plus.consistent_row((2, 3, 5), 10)
        assert not plus.consistent_row((2, 3, 6), 10)

    def test_out_of_domain_result_is_none(self):
        plus = ArithmeticRule(subtract=False)
        minus = ArithmeticRule(subtract=True)
        assert plus.predict(7, 7, 10) is None
        assert minus.predict(3, 7, 10) is None


class TestDistributeThreeRule:
    def test_predict_uses_observed_row_set(self):
        rule = DistributeThreeRule()
        observed = [(1, 4, 7), (7, 1, 4)]
        assert rule.predict(4, 7, 10, observed_rows=observed) == 1
        assert rule.predict(4, 4, 10, observed_rows=observed) is None

    def test_rows_with_different_sets_are_inconsistent(self):
        rule = DistributeThreeRule()
        assert rule.consistent_rows([(1, 2, 3), (3, 1, 2)], 10)
        assert not rule.consistent_rows([(1, 2, 3), (4, 5, 6)], 10)

    def test_without_observed_rows_no_prediction(self):
        assert DistributeThreeRule().predict(1, 2, 10) is None


class TestLogicalRule:
    @pytest.mark.parametrize(
        "operator,first,second,expected",
        [("xor", 0b1010, 0b0110, 0b1100), ("and", 0b1010, 0b0110, 0b0010), ("or", 0b1010, 0b0110, 0b1110)],
    )
    def test_operators(self, operator, first, second, expected):
        rule = LogicalRule(operator)
        assert rule.predict(first, second, 16) == expected
        assert rule.consistent_row((first, second, expected), 16)

    def test_unknown_operator_rejected(self):
        with pytest.raises(TaskGenerationError):
            LogicalRule("nand")

    def test_out_of_domain_result_is_none(self):
        assert LogicalRule("or").predict(5, 3, 4) is None

    @settings(max_examples=30, deadline=None)
    @given(first=st.integers(0, 15), second=st.integers(0, 15))
    def test_property_xor_is_self_inverse(self, first, second):
        rule = LogicalRule("xor")
        third = rule.predict(first, second, 16)
        assert rule.predict(third, second, 16) == first


class TestLibraries:
    def test_default_library_contents(self):
        names = {rule.name for rule in default_rule_library()}
        assert "constant" in names
        assert "distribute_three" in names
        assert any(name.startswith("progression") for name in names)
        assert any(name.startswith("arithmetic") for name in names)

    def test_logical_library_extends_default(self):
        default_names = {rule.name for rule in default_rule_library()}
        logical_names = {rule.name for rule in logical_rule_library()}
        assert default_names < logical_names
        assert {"logical_xor", "logical_and", "logical_or"} <= logical_names

    def test_invalid_domain_rejected(self):
        with pytest.raises(TaskGenerationError):
            ConstantRule().consistent_row((0, 0, 0), 0)
