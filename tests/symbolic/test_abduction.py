"""Tests for the probabilistic abduction and execution engine."""

import numpy as np
import pytest

from repro.errors import TaskGenerationError
from repro.symbolic import AttributePMF, ProbabilisticAbductionEngine
from repro.neural import PerceptionConfig, PerceptionSimulator
from repro.tasks import RavenGenerator


def _delta_panels(task, error=0.0, seed=0):
    simulator = PerceptionSimulator(
        task.attribute_domains, PerceptionConfig(error_rate=error, seed=seed)
    )
    context = [simulator.perceive_panel(panel) for panel in task.context]
    candidates = [simulator.perceive_panel(panel) for panel in task.candidates]
    return context, candidates


class TestRuleInference:
    def test_constant_rule_identified(self):
        engine = ProbabilisticAbductionEngine()
        domain = tuple(str(i) for i in range(5))
        panel = lambda v: {"x": AttributePMF.delta("x", domain, str(v))}
        context = [panel(2), panel(2), panel(2), panel(3), panel(3), panel(3), panel(4), panel(4)]
        posterior = engine.infer_rule_posterior(context, "x")
        assert posterior.most_likely == "constant"
        prediction = engine.predict_missing(context, "x", posterior)
        assert prediction.most_likely == "4"

    def test_progression_rule_identified(self):
        engine = ProbabilisticAbductionEngine()
        domain = tuple(str(i) for i in range(8))
        panel = lambda v: {"x": AttributePMF.delta("x", domain, str(v))}
        context = [panel(0), panel(1), panel(2), panel(3), panel(4), panel(5), panel(1), panel(2)]
        posterior = engine.infer_rule_posterior(context, "x")
        assert posterior.most_likely == "progression+1"
        assert engine.predict_missing(context, "x", posterior).most_likely == "3"

    def test_posterior_probabilities_normalised(self):
        engine = ProbabilisticAbductionEngine()
        domain = tuple(str(i) for i in range(5))
        panel = lambda v: {"x": AttributePMF.delta("x", domain, str(v))}
        context = [panel(1)] * 8
        posterior = engine.infer_rule_posterior(context, "x")
        assert posterior.probabilities.sum() == pytest.approx(1.0)
        assert posterior.probability_of("constant") > 0.2

    def test_unknown_rule_name_rejected(self):
        engine = ProbabilisticAbductionEngine()
        domain = ("0", "1", "2")
        panel = lambda v: {"x": AttributePMF.delta("x", domain, str(v))}
        posterior = engine.infer_rule_posterior([panel(1)] * 8, "x")
        with pytest.raises(TaskGenerationError):
            posterior.probability_of("not_a_rule")


class TestSolve:
    def test_solves_generated_tasks_with_perfect_perception(self):
        engine = ProbabilisticAbductionEngine()
        generator = RavenGenerator("center", seed=3)
        correct = 0
        tasks = generator.generate(10)
        for task in tasks:
            context, candidates = _delta_panels(task)
            result = engine.solve(context, candidates)
            correct += result.answer_index == task.answer_index
        assert correct >= 9

    def test_solves_under_mild_perception_noise(self):
        engine = ProbabilisticAbductionEngine()
        generator = RavenGenerator("left_right", seed=4)
        tasks = generator.generate(8)
        correct = 0
        for task in tasks:
            context, candidates = _delta_panels(task, error=0.05, seed=1)
            correct += engine.solve(context, candidates).answer_index == task.answer_index
        assert correct >= 6

    def test_result_fields(self):
        engine = ProbabilisticAbductionEngine()
        task = RavenGenerator("center", seed=5).generate_task()
        context, candidates = _delta_panels(task)
        result = engine.solve(context, candidates)
        assert len(result.answer_scores) == len(task.candidates)
        assert set(result.rule_posteriors) == set(task.attribute_domains)
        assert 0.0 <= result.confidence <= 1.0

    def test_wrong_context_length_rejected(self):
        engine = ProbabilisticAbductionEngine()
        task = RavenGenerator("center", seed=6).generate_task()
        context, candidates = _delta_panels(task)
        with pytest.raises(TaskGenerationError):
            engine.solve(context[:5], candidates)

    def test_empty_candidates_rejected(self):
        engine = ProbabilisticAbductionEngine()
        task = RavenGenerator("center", seed=7).generate_task()
        context, _ = _delta_panels(task)
        with pytest.raises(TaskGenerationError):
            engine.solve(context, [])

    def test_mismatched_attributes_rejected(self):
        engine = ProbabilisticAbductionEngine()
        domain = ("0", "1", "2")
        good = {"x": AttributePMF.delta("x", domain, "0")}
        bad = {"y": AttributePMF.delta("y", domain, "0")}
        with pytest.raises(TaskGenerationError):
            engine.solve([good] * 8, [bad])

    def test_engine_requires_rules(self):
        with pytest.raises(TaskGenerationError):
            ProbabilisticAbductionEngine(rules=[])
