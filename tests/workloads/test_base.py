"""Tests for the kernel/workload graph representation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import KernelKind, KernelOp, Stage, Workload
from repro.workloads.builders import circconv_kernel, elementwise_kernel, gemm_kernel


def _simple_workload():
    a = gemm_kernel("a", m=4, k=4, n=4)
    b = circconv_kernel("b", vector_dim=8, count=2, depends_on=("a",))
    c = elementwise_kernel("c", elements=16, depends_on=("b",))
    return Workload(name="toy", kernels=[a, b, c], weight_bytes=100, codebook_bytes=50)


class TestKernelOp:
    def test_arithmetic_intensity(self):
        kernel = gemm_kernel("g", m=8, k=8, n=8)
        assert kernel.arithmetic_intensity == pytest.approx(
            kernel.flops / kernel.total_bytes
        )

    def test_device_launches_defaults_to_count(self):
        kernel = circconv_kernel("c", vector_dim=8, count=5)
        assert kernel.device_launches == 5
        fused = circconv_kernel("c2", vector_dim=8, count=5, launches=2)
        assert fused.device_launches == 2

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(WorkloadError):
            KernelOp(
                name="bad",
                kind=KernelKind.GEMM,
                stage=Stage.NEURAL,
                flops=10,
                bytes_read=10,
                bytes_written=10,
                m=0,
            )

    def test_circconv_requires_vector_dim(self):
        with pytest.raises(WorkloadError):
            KernelOp(
                name="bad",
                kind=KernelKind.CIRCCONV,
                stage=Stage.SYMBOLIC,
                flops=10,
                bytes_read=10,
                bytes_written=10,
            )


class TestWorkload:
    def test_stage_and_kind_selection(self):
        workload = _simple_workload()
        assert [k.name for k in workload.by_stage(Stage.NEURAL)] == ["a"]
        assert [k.name for k in workload.by_kind(KernelKind.CIRCCONV)] == ["b"]

    def test_aggregate_metrics(self):
        workload = _simple_workload()
        assert workload.total_flops() == sum(k.flops for k in workload)
        assert 0 < workload.symbolic_flops_fraction() < 1
        assert workload.memory_footprint_bytes() == 150

    def test_topological_order_respects_dependencies(self):
        workload = _simple_workload()
        order = [k.name for k in workload.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_kernel_lookup(self):
        workload = _simple_workload()
        assert workload.kernel("b").kind is KernelKind.CIRCCONV
        assert [k.name for k in workload.dependencies_of("b")] == ["a"]
        with pytest.raises(WorkloadError):
            workload.kernel("missing")

    def test_duplicate_kernel_names_rejected(self):
        a = gemm_kernel("a", m=2, k=2, n=2)
        with pytest.raises(WorkloadError):
            Workload(name="dup", kernels=[a, a])

    def test_unknown_dependency_rejected(self):
        a = gemm_kernel("a", m=2, k=2, n=2, depends_on=("ghost",))
        with pytest.raises(WorkloadError):
            Workload(name="bad", kernels=[a])

    def test_cyclic_dependencies_detected(self):
        a = gemm_kernel("a", m=2, k=2, n=2, depends_on=("b",))
        b = gemm_kernel("b", m=2, k=2, n=2, depends_on=("a",))
        workload = Workload(name="cycle", kernels=[a, b])
        with pytest.raises(WorkloadError):
            workload.topological_order()

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="empty", kernels=[])
