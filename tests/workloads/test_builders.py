"""Tests for the kernel builder helpers."""

import pytest

from repro.errors import WorkloadError
from repro.neural.network import build_perception_backbone
from repro.workloads import KernelKind, Stage
from repro.workloads.builders import (
    circconv_kernel,
    conv_kernel,
    elementwise_kernel,
    gemm_kernel,
    matvec_kernel,
    perception_kernels,
)


class TestKernelBuilders:
    def test_gemm_costs(self):
        kernel = gemm_kernel("g", m=4, k=8, n=16)
        assert kernel.flops == 2 * 4 * 8 * 16
        assert kernel.bytes_read == (4 * 8 + 8 * 16) * 4
        assert kernel.bytes_written == 4 * 16 * 4

    def test_conv_lowered_to_gemm_shape(self):
        kernel = conv_kernel("c", in_channels=3, out_channels=8, kernel_size=3,
                             output_height=10, output_width=10)
        assert (kernel.m, kernel.k, kernel.n) == (100, 27, 8)
        assert kernel.kind is KernelKind.CONV

    def test_matvec_counts_multiple_products(self):
        kernel = matvec_kernel("mv", rows=16, cols=64, count=5)
        assert kernel.flops == 2 * 16 * 64 * 5
        assert kernel.stage is Stage.SYMBOLIC

    def test_circconv_flops_are_quadratic_but_traffic_linear(self):
        kernel = circconv_kernel("cc", vector_dim=256, count=3)
        assert kernel.flops == 3 * (2 * 256 * 256 - 256)
        assert kernel.total_bytes == 3 * 3 * 256 * 4
        with pytest.raises(WorkloadError):
            circconv_kernel("bad", vector_dim=0, count=1)

    def test_elementwise_launch_count(self):
        kernel = elementwise_kernel("e", elements=100, ops_per_element=2, count=4)
        assert kernel.flops == 200
        assert kernel.device_launches == 4


class TestPerceptionKernels:
    def test_lowering_produces_conv_gemm_and_elementwise(self):
        backbone = build_perception_backbone(image_size=16, width=4, num_blocks=2, embedding_dim=32)
        kernels = perception_kernels(backbone, (1, 16, 16), prefix="p", num_panels=2)
        kinds = {kernel.kind for kernel in kernels}
        assert KernelKind.CONV in kinds
        assert KernelKind.GEMM in kinds
        assert KernelKind.ELEMENTWISE in kinds

    def test_kernels_form_a_chain(self):
        backbone = build_perception_backbone(image_size=16, width=4, num_blocks=2, embedding_dim=32)
        kernels = perception_kernels(backbone, (1, 16, 16), prefix="p", num_panels=1)
        for previous, current in zip(kernels[:-1], kernels[1:]):
            if current.kind is not KernelKind.ELEMENTWISE:
                assert previous.name in current.depends_on or current.depends_on

    def test_panel_count_scales_flops(self):
        backbone = build_perception_backbone(image_size=16, width=4, num_blocks=2, embedding_dim=32)
        one = sum(k.flops for k in perception_kernels(backbone, (1, 16, 16), "p", num_panels=1))
        four = sum(k.flops for k in perception_kernels(backbone, (1, 16, 16), "p", num_panels=4))
        assert four == pytest.approx(4 * one, rel=0.05)

    def test_invalid_panel_count_rejected(self):
        backbone = build_perception_backbone(image_size=16, width=4, num_blocks=2)
        with pytest.raises(WorkloadError):
            perception_kernels(backbone, (1, 16, 16), "p", num_panels=0)
