"""Tests for the NVSA/MIMONet/LVRF/PrAE workload builders."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    KernelKind,
    Stage,
    build_lvrf_workload,
    build_mimonet_workload,
    build_nvsa_workload,
    build_prae_workload,
    build_workload,
)

ALL_BUILDERS = {
    "nvsa": build_nvsa_workload,
    "mimonet": build_mimonet_workload,
    "lvrf": build_lvrf_workload,
    "prae": build_prae_workload,
}


class TestCommonProperties:
    @pytest.mark.parametrize("name", list(ALL_BUILDERS))
    def test_graph_is_valid_and_has_both_stages(self, name):
        workload = ALL_BUILDERS[name]()
        order = workload.topological_order()
        assert len(order) == len(workload)
        assert workload.by_stage(Stage.NEURAL)
        assert workload.by_stage(Stage.SYMBOLIC)
        assert workload.memory_footprint_bytes() > 1_000_000

    @pytest.mark.parametrize("name", list(ALL_BUILDERS))
    def test_registry_builds_same_workload(self, name):
        assert build_workload(name).name == ALL_BUILDERS[name]().name

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("alphageometry")


class TestNVSA:
    def test_symbolic_kernels_depend_on_neural_output(self):
        workload = build_nvsa_workload()
        unbind = workload.kernel("task0/symb/unbind")
        assert any("neuro" in dep for dep in unbind.depends_on)

    def test_symbolic_flops_are_minor_share(self):
        workload = build_nvsa_workload()
        assert 0.05 < workload.symbolic_flops_fraction() < 0.5

    def test_grid_size_scales_work(self):
        small = build_nvsa_workload(grid_size=2)
        large = build_nvsa_workload(grid_size=3)
        assert large.total_flops() > small.total_flops()

    def test_codebook_variant_has_much_larger_codebook(self):
        factorized = build_nvsa_workload(use_factorization=True)
        exhaustive = build_nvsa_workload(use_factorization=False)
        assert exhaustive.codebook_bytes > 20 * factorized.codebook_bytes

    def test_multi_task_batches_have_independent_kernels(self):
        workload = build_nvsa_workload(num_tasks=3)
        task_ids = {kernel.task_id for kernel in workload}
        assert task_ids == {0, 1, 2}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            build_nvsa_workload(grid_size=1)
        with pytest.raises(WorkloadError):
            build_nvsa_workload(num_tasks=0)


class TestWorkloadCharacter:
    def test_mimonet_is_neural_dominated(self):
        workload = build_mimonet_workload()
        assert workload.symbolic_flops_fraction() < 0.1
        circconvs = workload.by_kind(KernelKind.CIRCCONV)
        assert circconvs and all(k.vector_dim <= 128 for k in circconvs)

    def test_lvrf_has_the_most_circular_convolutions(self):
        lvrf = sum(k.count for k in build_lvrf_workload().by_kind(KernelKind.CIRCCONV))
        nvsa = sum(k.count for k in build_nvsa_workload().by_kind(KernelKind.CIRCCONV))
        assert lvrf > nvsa

    def test_prae_symbolic_stage_is_elementwise_heavy(self):
        workload = build_prae_workload()
        symbolic = workload.by_stage(Stage.SYMBOLIC)
        elementwise_flops = sum(
            k.flops for k in symbolic if k.kind is KernelKind.ELEMENTWISE
        )
        assert elementwise_flops > 0.5 * sum(k.flops for k in symbolic)
        assert not workload.by_kind(KernelKind.CIRCCONV)
