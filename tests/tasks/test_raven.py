"""Tests for the RAVEN task generator."""

import pytest

from repro.errors import TaskGenerationError
from repro.symbolic.rules import logical_rule_library
from repro.tasks import RAVEN_CONFIGURATIONS, RavenGenerator
from repro.tasks.base import RPMTask


def _rule_by_name(name):
    for rule in logical_rule_library():
        if rule.name == name:
            return rule
    raise AssertionError(f"unknown rule {name}")


class TestConfigurations:
    def test_all_seven_constellations_present(self):
        assert len(RAVEN_CONFIGURATIONS) == 7
        assert {"center", "2x2_grid", "3x3_grid", "left_right", "up_down",
                "out_in_center", "out_in_grid"} == set(RAVEN_CONFIGURATIONS)

    def test_grid_configurations_add_number_attribute(self):
        domains = RAVEN_CONFIGURATIONS["2x2_grid"].attribute_domains()
        assert "grid.number" in domains
        assert len(domains["grid.number"]) == 4

    def test_multi_component_configurations_have_per_component_attributes(self):
        domains = RAVEN_CONFIGURATIONS["left_right"].attribute_domains()
        assert "left.type" in domains and "right.type" in domains


class TestRavenGenerator:
    @pytest.mark.parametrize("configuration", list(RAVEN_CONFIGURATIONS))
    def test_generated_task_is_well_formed(self, configuration):
        task = RavenGenerator(configuration, seed=1).generate_task()
        assert isinstance(task, RPMTask)
        assert len(task.context) == 8
        assert len(task.candidates) == 8
        assert set(task.rules) == set(task.attribute_domains)

    def test_rows_obey_sampled_rules(self):
        generator = RavenGenerator("center", seed=2)
        for task in generator.generate(10):
            panels = list(task.context) + [task.correct_answer]
            for attribute, rule_name in task.rules.items():
                rule = _rule_by_name(rule_name)
                domain = list(task.attribute_domains[attribute])
                rows = [
                    tuple(domain.index(panels[row * 3 + col][attribute]) for col in range(3))
                    for row in range(3)
                ]
                assert rule.consistent_rows(rows, len(domain)), (rule_name, rows)

    def test_correct_answer_is_in_candidates_once(self):
        task = RavenGenerator("center", seed=3).generate_task()
        matches = [c for c in task.candidates if c == task.correct_answer]
        assert len(matches) == 1

    def test_distractors_differ_from_answer(self):
        task = RavenGenerator("center", seed=4).generate_task()
        for index, candidate in enumerate(task.candidates):
            if index != task.answer_index:
                assert candidate != task.correct_answer

    def test_batch_generation_and_rule_histogram(self):
        batch = RavenGenerator("center", seed=5).generate(6)
        assert len(batch) == 6
        histogram = batch.rule_histogram()
        assert sum(histogram.values()) == 6 * 3  # three attributes per center task

    def test_seeding_is_reproducible(self):
        a = RavenGenerator("center", seed=7).generate_task()
        b = RavenGenerator("center", seed=7).generate_task()
        assert a.context == b.context and a.candidates == b.candidates

    def test_unknown_configuration_rejected(self):
        with pytest.raises(TaskGenerationError):
            RavenGenerator("spiral")

    def test_too_few_candidates_rejected(self):
        with pytest.raises(TaskGenerationError):
            RavenGenerator("center", num_candidates=1)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(TaskGenerationError):
            RavenGenerator("center", seed=0).generate(0)


class TestRPMTaskValidation:
    def test_wrong_context_length_rejected(self):
        task = RavenGenerator("center", seed=8).generate_task()
        with pytest.raises(TaskGenerationError):
            RPMTask(
                name="broken",
                context=task.context[:5],
                candidates=task.candidates,
                answer_index=task.answer_index,
                rules=task.rules,
                attribute_domains=task.attribute_domains,
            )

    def test_answer_index_out_of_range_rejected(self):
        task = RavenGenerator("center", seed=9).generate_task()
        with pytest.raises(TaskGenerationError):
            RPMTask(
                name="broken",
                context=task.context,
                candidates=task.candidates,
                answer_index=99,
                rules=task.rules,
                attribute_domains=task.attribute_domains,
            )
