"""Tests for the I-RAVEN and PGM generators."""

import pytest

from repro.symbolic.rules import logical_rule_library
from repro.tasks import IRavenGenerator, PGMGenerator
from repro.tasks.pgm import POSITION_MASKS, mask_from_label, popcount_of_label


class TestIRavenGenerator:
    def test_answer_set_is_unbiased(self):
        generator = IRavenGenerator("center", seed=1)
        balances = []
        for task in generator.generate(10):
            for attribute in task.attribute_domains:
                balances.append(
                    IRavenGenerator.answer_value_balance(list(task.candidates), attribute)
                )
        # With the bisection tree no attribute value should dominate the
        # candidate set the way plain RAVEN distractors do.
        assert sum(balances) / len(balances) < 0.75

    def test_majority_vote_shortcut_only_works_on_raven(self):
        """The context-blind majority-vote shortcut that motivated I-RAVEN."""
        from repro.tasks import RavenGenerator

        def majority_vote_accuracy(generator, num_tasks=20):
            correct = 0
            for task in generator.generate(num_tasks):
                scores = []
                for candidate in task.candidates:
                    score = sum(
                        sum(other[attr] == candidate[attr] for other in task.candidates)
                        for attr in task.attribute_domains
                    )
                    scores.append(score)
                correct += scores.index(max(scores)) == task.answer_index
            return correct / num_tasks

        raven_shortcut = majority_vote_accuracy(RavenGenerator("center", seed=2))
        iraven_shortcut = majority_vote_accuracy(IRavenGenerator("center", seed=2))
        assert raven_shortcut > iraven_shortcut
        assert raven_shortcut > 0.5

    def test_correct_answer_present_exactly_once(self):
        task = IRavenGenerator("center", seed=3).generate_task()
        assert task.candidates.count(task.correct_answer) == 1

    def test_task_name_uses_dataset_tag(self):
        task = IRavenGenerator("center", seed=4).generate_task()
        assert task.name.startswith("iraven/")


class TestPGMGenerator:
    def test_position_masks_cover_all_bitmasks(self):
        assert len(POSITION_MASKS) == 16
        assert mask_from_label("mask_1010") == 0b1010
        assert popcount_of_label("mask_0111") == 3

    def test_generated_tasks_include_position_attribute(self):
        task = PGMGenerator(seed=5).generate_task()
        assert "shape.position" in task.attribute_domains
        assert len(task.attribute_domains["shape.position"]) == 16

    def test_logical_rules_appear_in_batches(self):
        batch = PGMGenerator(seed=6).generate(30)
        histogram = batch.rule_histogram()
        assert any(name.startswith("logical_") for name in histogram)

    def test_rows_obey_logical_rules(self):
        rules = {rule.name: rule for rule in logical_rule_library()}
        for task in PGMGenerator(seed=7).generate(10):
            rule = rules[task.rules["shape.position"]]
            domain = list(task.attribute_domains["shape.position"])
            panels = list(task.context) + [task.correct_answer]
            rows = [
                tuple(domain.index(panels[row * 3 + col]["shape.position"]) for col in range(3))
                for row in range(3)
            ]
            assert rule.consistent_rows(rows, len(domain))

    def test_mask_label_validation(self):
        with pytest.raises(Exception):
            mask_from_label("position_3")
