"""Tests for the CVR/SVRT generators and the dataset registry."""

import pytest

from repro.errors import TaskGenerationError
from repro.tasks import (
    CVRGenerator,
    CVRTask,
    SVRTGenerator,
    make_generator,
    TASK_GENERATORS,
)


class TestCVRGenerator:
    def test_task_structure(self):
        task = CVRGenerator(seed=1).generate_task()
        assert task.num_panels == 4
        assert 0 <= task.odd_index < 4

    def test_regular_panels_share_the_rule_value(self):
        task = CVRGenerator(seed=2).generate_task()
        for index, panel in enumerate(task.panels):
            if index == task.odd_index:
                assert panel[task.rule_attribute] != task.shared_value
            else:
                assert panel[task.rule_attribute] == task.shared_value

    def test_custom_panel_count(self):
        task = CVRGenerator(num_panels=6, seed=3).generate_task()
        assert task.num_panels == 6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TaskGenerationError):
            CVRGenerator(num_panels=2)
        with pytest.raises(TaskGenerationError):
            CVRGenerator(seed=0).generate(0)

    def test_invalid_task_construction_rejected(self):
        with pytest.raises(TaskGenerationError):
            CVRTask(name="bad", panels=({"shape": "a"},), odd_index=0,
                    rule_attribute="shape", shared_value="a")


class TestSVRTGenerator:
    def test_same_tasks_have_identical_panels(self):
        generator = SVRTGenerator(seed=4)
        tasks = generator.generate(40)
        for task in tasks:
            if task.same:
                assert task.panel_a == task.panel_b
            else:
                assert task.panel_a != task.panel_b

    def test_labels_are_binary(self):
        generator = SVRTGenerator(seed=5)
        labels = {task.label for task in generator.generate(30)}
        assert labels <= {0, 1}
        assert len(labels) == 2

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(TaskGenerationError):
            SVRTGenerator(seed=0).generate(0)


class TestRegistry:
    def test_all_five_datasets_registered(self):
        assert set(TASK_GENERATORS) == {"raven", "iraven", "pgm", "cvr", "svrt"}

    def test_make_generator_builds_each(self):
        for name in TASK_GENERATORS:
            generator = make_generator(name, seed=0)
            assert generator is not None

    def test_unknown_dataset_rejected(self):
        with pytest.raises(TaskGenerationError):
            make_generator("clevr")
