"""Tests for the codebook-vs-factorizer memory footprint accounting."""

import pytest

from repro.core import Precision, codebook_footprint, factorizer_footprint
from repro.core.footprint import codebook_set_footprint, compare_footprints
from repro.errors import FactorizationError
from repro.vsa import BipolarSpace, CodebookSet


class TestAnalyticalFootprints:
    def test_product_footprint_is_combinatorial(self):
        assert codebook_footprint([10, 10], dim=100) == 100 * 100 * 4
        assert codebook_footprint([10, 10, 10], dim=100) == 1000 * 100 * 4

    def test_factorized_footprint_is_additive(self):
        bytes_ = factorizer_footprint([10, 10, 10], dim=100)
        # 30 codevectors plus 7 working vectors (2 per factor + query).
        assert bytes_ == (30 + 7) * 100 * 4

    def test_precision_scales_footprints(self):
        fp32 = codebook_footprint([5, 5], dim=64, precision=Precision.FP32)
        int8 = codebook_footprint([5, 5], dim=64, precision=Precision.INT8)
        assert fp32 == 4 * int8

    def test_invalid_inputs_raise(self):
        with pytest.raises(FactorizationError):
            codebook_footprint([], dim=10)
        with pytest.raises(FactorizationError):
            codebook_footprint([3, 0], dim=10)
        with pytest.raises(FactorizationError):
            factorizer_footprint([3, 3], dim=0)

    def test_nvsa_scale_reduction_factor_matches_paper_magnitude(self):
        """Fig. 8: the factorization shrinks the codebook by roughly 70x.

        With the paper's NVSA-like configuration (5 attribute codebooks of
        tens of entries each, d=1024) the product codebook is two orders of
        magnitude larger than the factorized form.
        """
        report = compare_footprints([7, 10, 6, 9, 5], dim=1024)
        assert report.reduction_factor > 50
        assert report.product_codebook_bytes > 50 * report.factorized_bytes

    def test_report_unit_conversions(self):
        report = compare_footprints([4, 4], dim=256)
        assert report.product_codebook_kib == pytest.approx(
            report.product_codebook_bytes / 1024
        )
        assert report.factorized_kib == pytest.approx(report.factorized_bytes / 1024)


class TestCodebookSetFootprint:
    def test_matches_analytical_formula(self, small_factors):
        space = BipolarSpace(128, seed=0)
        codebooks = CodebookSet.from_factors(small_factors, space)
        report = codebook_set_footprint(codebooks)
        assert report.product_codebook_bytes == codebook_footprint(
            codebooks.factor_sizes, codebooks.dim
        )
        assert report.factorized_bytes == factorizer_footprint(
            codebooks.factor_sizes, codebooks.dim
        )
        assert report.reduction_factor > 1
