"""Tests for FP32/FP8/INT8 precision emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import Precision, QuantizedCodebook, dequantize, quantize
from repro.core.quantization import quantization_error
from repro.errors import QuantizationError
from repro.vsa import BipolarSpace, Codebook


class TestPrecision:
    def test_bytes_per_element(self):
        assert Precision.FP32.bytes_per_element == 4
        assert Precision.FP8.bytes_per_element == 1
        assert Precision.INT8.bytes_per_element == 1

    def test_parse_accepts_strings_and_enums(self):
        assert Precision.parse("int8") is Precision.INT8
        assert Precision.parse("FP8") is Precision.FP8
        assert Precision.parse(Precision.FP32) is Precision.FP32

    def test_parse_rejects_unknown(self):
        with pytest.raises(QuantizationError):
            Precision.parse("int4")


class TestQuantizeRoundtrip:
    def test_fp32_is_lossless(self, rng):
        values = rng.normal(size=100)
        restored = dequantize(quantize(values, Precision.FP32))
        np.testing.assert_allclose(restored, values, rtol=1e-6)

    def test_int8_roundtrip_error_is_bounded(self, rng):
        values = rng.normal(size=1000)
        restored = dequantize(quantize(values, Precision.INT8))
        max_abs = np.max(np.abs(values))
        assert np.max(np.abs(restored - values)) <= max_abs / 127.0 + 1e-12

    def test_int8_payload_dtype_and_range(self, rng):
        tensor = quantize(rng.normal(size=64), Precision.INT8)
        assert tensor.data.dtype == np.int8
        assert np.max(np.abs(tensor.data)) <= 127

    def test_int8_preserves_sign_pattern(self, rng):
        values = rng.choice([-1.0, 1.0], size=128)
        restored = dequantize(quantize(values, Precision.INT8))
        np.testing.assert_array_equal(np.sign(restored), np.sign(values))

    def test_fp8_roundtrip_relative_error(self, rng):
        values = rng.normal(size=1000)
        restored = dequantize(quantize(values, Precision.FP8))
        # E4M3 has 3 mantissa bits, so the relative error for normal-range
        # values is bounded by 2^-4; very small values fall into the
        # fixed-step subnormal range and are excluded from the check.
        normal = np.abs(values) > 0.05
        relative = np.abs(restored[normal] - values[normal]) / np.abs(values[normal])
        assert np.max(relative) < 0.0625 + 1e-9

    def test_fp8_clamps_to_max_value(self):
        restored = dequantize(quantize(np.array([1e6, -1e6]), Precision.FP8))
        np.testing.assert_allclose(np.abs(restored), [448.0, 448.0])

    def test_fp8_preserves_zero(self):
        restored = dequantize(quantize(np.zeros(10), Precision.FP8))
        np.testing.assert_array_equal(restored, np.zeros(10))

    def test_nbytes_accounting(self, rng):
        values = rng.normal(size=256)
        assert quantize(values, Precision.FP32).nbytes == 256 * 4
        assert quantize(values, Precision.INT8).nbytes == 256
        assert quantize(values, Precision.FP8).nbytes == 256

    def test_quantization_error_ordering(self, rng):
        values = rng.normal(size=2000)
        assert quantization_error(values, Precision.FP32) <= 1e-7
        assert quantization_error(values, Precision.INT8) < quantization_error(
            values, Precision.FP8
        ) * 10
        assert quantization_error(values, Precision.FP8) > 0

    @settings(max_examples=30, deadline=None)
    @given(
        values=arrays(
            dtype=np.float64,
            shape=st.integers(1, 64),
            elements=st.floats(-400, 400, allow_nan=False, allow_infinity=False),
        )
    )
    def test_property_int8_error_bound(self, values):
        restored = dequantize(quantize(values, Precision.INT8))
        bound = (np.max(np.abs(values)) / 127.0 if values.size else 0.0) * 0.5 + 1e-9
        assert np.max(np.abs(restored - values)) <= bound * 2


class TestQuantizedCodebook:
    def test_quantized_cleanup_still_recovers_labels(self, rng):
        space = BipolarSpace(512, seed=2)
        codebook = Codebook("shape", ["a", "b", "c", "d"], space)
        quantized = QuantizedCodebook(codebook, Precision.INT8)
        for label in codebook.labels:
            noisy = codebook.vector(label) + rng.normal(0, 0.3, size=512)
            assert quantized.cleanup(noisy)[0] == label

    def test_footprint_shrinks_4x_for_int8(self):
        space = BipolarSpace(256, seed=2)
        codebook = Codebook("shape", ["a", "b", "c"], space)
        quantized = QuantizedCodebook(codebook, "int8")
        assert quantized.nbytes() * 4 == codebook.nbytes()

    def test_metadata_passthrough(self):
        space = BipolarSpace(64, seed=2)
        codebook = Codebook("shape", ["a", "b"], space)
        quantized = QuantizedCodebook(codebook, Precision.FP8)
        assert quantized.name == "shape"
        assert quantized.labels == ["a", "b"]
        assert len(quantized) == 2
