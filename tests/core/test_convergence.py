"""Tests for convergence and limit-cycle tracking."""

import pytest

from repro.core import ConvergenceTracker


class TestConvergenceTracker:
    def test_not_converged_before_enough_updates(self):
        tracker = ConvergenceTracker(patience=2)
        tracker.update([1, 2])
        assert not tracker.converged

    def test_converges_after_patience_identical_states(self):
        tracker = ConvergenceTracker(patience=2)
        for _ in range(3):
            tracker.update([4, 0, 2])
        assert tracker.converged
        assert tracker.final_state == (4, 0, 2)

    def test_changing_states_do_not_converge(self):
        tracker = ConvergenceTracker(patience=1)
        tracker.update([0, 0])
        tracker.update([0, 1])
        assert not tracker.converged

    def test_cycle_detection(self):
        tracker = ConvergenceTracker(patience=3)
        tracker.update([0, 0])
        tracker.update([1, 1])
        tracker.update([0, 0])
        assert tracker.cycle_detected
        assert not tracker.converged

    def test_repeated_state_without_gap_is_not_a_cycle(self):
        tracker = ConvergenceTracker(patience=5)
        tracker.update([2, 2])
        tracker.update([2, 2])
        assert not tracker.cycle_detected

    def test_iterations_counts_updates(self):
        tracker = ConvergenceTracker()
        for i in range(4):
            tracker.update([i])
        assert tracker.iterations == 4

    def test_final_state_none_before_updates(self):
        assert ConvergenceTracker().final_state is None

    def test_invalid_patience_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(patience=0)
