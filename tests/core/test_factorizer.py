"""Tests for the iterative factorizer and the exhaustive baseline."""

import numpy as np
import pytest

from repro.core import (
    ConstantGaussianNoise,
    ExhaustiveFactorizer,
    FactorizationResult,
    Factorizer,
    FactorizerConfig,
    OperationCount,
)
from repro.errors import FactorizationError
from repro.vsa import BipolarSpace, CodebookSet, HRRSpace, SceneEncoder


def _random_assignment(factors, rng):
    return {name: str(rng.choice(labels)) for name, labels in factors.items()}


class TestFactorizerConfig:
    def test_defaults_are_valid(self):
        config = FactorizerConfig()
        assert config.max_iterations >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"convergence_patience": 0},
            {"max_restarts": -1},
            {"confidence_threshold": 1.5},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(FactorizationError):
            FactorizerConfig(**kwargs)


class TestFactorizerBipolar:
    def test_recovers_clean_single_object(self, bipolar_codebooks, bipolar_encoder, rng):
        factorizer = Factorizer(bipolar_codebooks, FactorizerConfig(seed=0))
        truth = {"type": "pentagon", "size": "medium", "color": "black"}
        result = factorizer.factorize(bipolar_encoder.encode_object(truth))
        assert result.matches(truth)
        assert result.confidence > 0.9
        assert result.converged

    def test_accuracy_over_many_clean_queries(self, small_factors):
        space = BipolarSpace(1024, seed=3)
        codebooks = CodebookSet.from_factors(small_factors, space)
        encoder = SceneEncoder(codebooks)
        factorizer = Factorizer(
            codebooks,
            FactorizerConfig(similarity_noise=ConstantGaussianNoise(0.05), seed=1),
        )
        rng = np.random.default_rng(17)
        trials = 25
        correct = sum(
            factorizer.factorize(encoder.encode_object(truth)).matches(truth)
            for truth in (_random_assignment(small_factors, rng) for _ in range(trials))
        )
        assert correct / trials >= 0.9

    def test_recovers_noisy_query(self, bipolar_codebooks, bipolar_encoder, rng):
        factorizer = Factorizer(
            bipolar_codebooks,
            FactorizerConfig(similarity_noise=ConstantGaussianNoise(0.05), seed=2),
        )
        truth = {"type": "hexagon", "size": "small", "color": "white"}
        noisy = bipolar_encoder.encode_with_noise([truth], noise_std=0.4, rng=rng)
        assert factorizer.factorize(noisy).matches(truth)

    def test_result_bookkeeping_fields(self, bipolar_codebooks, bipolar_encoder):
        factorizer = Factorizer(bipolar_codebooks, FactorizerConfig(seed=0))
        truth = {"type": "square", "size": "large", "color": "red"}
        result = factorizer.factorize(bipolar_encoder.encode_object(truth))
        assert isinstance(result, FactorizationResult)
        assert set(result.labels) == {"type", "size", "color"}
        assert set(result.indices) == {"type", "size", "color"}
        assert result.label_tuple == tuple(result.labels.values())
        assert result.operations.iterations == result.iterations
        assert result.operations.matvec_flops > 0
        assert all(-1.0 <= s <= 1.0 + 1e-9 for s in result.similarities.values())

    def test_rejects_wrong_query_shape(self, bipolar_codebooks):
        factorizer = Factorizer(bipolar_codebooks)
        with pytest.raises(FactorizationError):
            factorizer.factorize(np.ones(7))

    def test_batch_factorization(self, bipolar_codebooks, bipolar_encoder, rng):
        factorizer = Factorizer(bipolar_codebooks, FactorizerConfig(seed=0))
        truths = [
            {"type": "circle", "size": "small", "color": "grey"},
            {"type": "square", "size": "large", "color": "red"},
        ]
        queries = np.stack([bipolar_encoder.encode_object(t) for t in truths])
        results = factorizer.factorize_batch(queries)
        assert len(results) == 2
        assert results[0].matches(truths[0]) and results[1].matches(truths[1])

    def test_seeded_factorizer_is_deterministic(self, bipolar_codebooks, bipolar_encoder):
        truth = {"type": "triangle", "size": "medium", "color": "black"}
        query = bipolar_encoder.encode_object(truth)
        config = FactorizerConfig(similarity_noise=ConstantGaussianNoise(0.1), seed=9)
        first = Factorizer(bipolar_codebooks, config).factorize(query)
        second = Factorizer(bipolar_codebooks, config).factorize(query)
        assert first.labels == second.labels
        assert first.iterations == second.iterations


class TestFactorizerHRR:
    def test_recovers_clean_single_object(self, hrr_codebooks, hrr_encoder):
        factorizer = Factorizer(hrr_codebooks, FactorizerConfig(seed=0))
        truth = {"type": "circle", "size": "large", "color": "grey"}
        result = factorizer.factorize(hrr_encoder.encode_object(truth))
        assert result.matches(truth)

    def test_high_accuracy_on_hrr_space(self, small_factors):
        space = HRRSpace(512, seed=3)
        codebooks = CodebookSet.from_factors(small_factors, space)
        encoder = SceneEncoder(codebooks)
        factorizer = Factorizer(codebooks, FactorizerConfig(seed=1))
        rng = np.random.default_rng(23)
        trials = 15
        correct = sum(
            factorizer.factorize(encoder.encode_object(truth)).matches(truth)
            for truth in (_random_assignment(small_factors, rng) for _ in range(trials))
        )
        assert correct / trials >= 0.9


class TestStochasticityEffect:
    def test_noise_does_not_hurt_accuracy(self, small_factors):
        """Stochasticity should keep (or improve) accuracy vs. the baseline."""
        space = BipolarSpace(1024, seed=5)
        codebooks = CodebookSet.from_factors(small_factors, space)
        encoder = SceneEncoder(codebooks)
        rng = np.random.default_rng(31)
        truths = [_random_assignment(small_factors, rng) for _ in range(20)]
        queries = [encoder.encode_object(t) for t in truths]

        def accuracy(noise):
            config = FactorizerConfig(similarity_noise=noise, max_restarts=2, seed=4)
            factorizer = Factorizer(codebooks, config)
            return sum(
                factorizer.factorize(q).matches(t) for q, t in zip(queries, truths)
            )

        from repro.core import NoNoise

        assert accuracy(ConstantGaussianNoise(0.05)) >= accuracy(NoNoise()) - 1


class TestExhaustiveFactorizer:
    def test_exhaustive_search_is_exact(self, bipolar_codebooks, bipolar_encoder):
        exhaustive = ExhaustiveFactorizer(bipolar_codebooks)
        truth = {"type": "hexagon", "size": "medium", "color": "white"}
        result = exhaustive.factorize(bipolar_encoder.encode_object(truth))
        assert result.matches(truth)
        assert result.converged and result.iterations == 1

    def test_exhaustive_costs_scale_with_product_space(self, bipolar_codebooks):
        exhaustive = ExhaustiveFactorizer(bipolar_codebooks)
        query = bipolar_codebooks.bind_combination(
            {"type": "square", "size": "small", "color": "red"}
        )
        result = exhaustive.factorize(query)
        expected_flops = 2 * bipolar_codebooks.num_combinations * bipolar_codebooks.dim
        assert result.operations.matvec_flops == expected_flops

    def test_iterative_is_cheaper_than_exhaustive_for_large_spaces(self):
        factors = {
            "type": [f"t{i}" for i in range(8)],
            "size": [f"s{i}" for i in range(8)],
            "color": [f"c{i}" for i in range(8)],
            "position": [f"p{i}" for i in range(8)],
        }
        space = BipolarSpace(1024, seed=1)
        codebooks = CodebookSet.from_factors(factors, space)
        encoder = SceneEncoder(codebooks)
        truth = {"type": "t3", "size": "s5", "color": "c2", "position": "p7"}
        iterative = Factorizer(codebooks, FactorizerConfig(seed=0)).factorize(
            encoder.encode_object(truth)
        )
        exhaustive_flops = 2 * codebooks.num_combinations * codebooks.dim
        assert iterative.operations.matvec_flops < exhaustive_flops


class TestOperationCount:
    def test_merge_adds_fields(self):
        a = OperationCount(iterations=1, unbind_ops=2, matvec_ops=3, matvec_flops=4, elementwise_flops=5)
        b = OperationCount(iterations=10, unbind_ops=20, matvec_ops=30, matvec_flops=40, elementwise_flops=50)
        merged = a.merge(b)
        assert merged.iterations == 11
        assert merged.total_flops == 44 + 55
