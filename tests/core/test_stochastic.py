"""Tests for noise schedules used by the factorizer."""

import numpy as np
import pytest

from repro.core import AnnealedGaussianNoise, ConstantGaussianNoise, NoNoise
from repro.errors import FactorizationError


class TestNoNoise:
    def test_std_is_zero(self):
        assert NoNoise().std_at(0) == 0.0
        assert NoNoise().std_at(100) == 0.0

    def test_apply_is_identity(self, rng):
        values = rng.normal(size=32)
        np.testing.assert_array_equal(NoNoise().apply(values, 0, rng), values)


class TestConstantGaussianNoise:
    def test_std_is_constant(self):
        schedule = ConstantGaussianNoise(0.2)
        assert schedule.std_at(0) == schedule.std_at(50) == 0.2

    def test_apply_perturbs_values(self, rng):
        schedule = ConstantGaussianNoise(0.5)
        values = rng.normal(size=64)
        noisy = schedule.apply(values, 0, rng)
        assert not np.array_equal(noisy, values)
        assert noisy.shape == values.shape

    def test_noise_scales_with_signal(self, rng):
        schedule = ConstantGaussianNoise(0.1)
        small = rng.normal(0, 1.0, size=4096)
        large = small * 100.0
        small_delta = np.std(schedule.apply(small, 0, np.random.default_rng(0)) - small)
        large_delta = np.std(schedule.apply(large, 0, np.random.default_rng(0)) - large)
        assert large_delta == pytest.approx(100 * small_delta, rel=0.05)

    def test_zero_signal_uses_unit_scale(self, rng):
        schedule = ConstantGaussianNoise(0.3)
        noisy = schedule.apply(np.zeros(16), 0, rng)
        assert np.std(noisy) > 0

    def test_negative_std_rejected(self):
        with pytest.raises(FactorizationError):
            ConstantGaussianNoise(-0.1)


class TestAnnealedGaussianNoise:
    def test_std_decays_monotonically(self):
        schedule = AnnealedGaussianNoise(initial_std=0.4, decay=0.8)
        stds = [schedule.std_at(i) for i in range(10)]
        assert all(a >= b for a, b in zip(stds, stds[1:]))
        assert stds[0] == pytest.approx(0.4)

    def test_floor_is_respected(self):
        schedule = AnnealedGaussianNoise(initial_std=0.4, decay=0.5, floor=0.05)
        assert schedule.std_at(100) == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_std": -1.0},
            {"decay": 0.0},
            {"decay": 1.5},
            {"floor": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(FactorizationError):
            AnnealedGaussianNoise(**kwargs)
