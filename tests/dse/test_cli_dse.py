"""Tests for the ``repro dse`` CLI (incl. the <60 s smoke acceptance gate)."""

import json
import time

import pytest

from repro.cli import main
from repro.dse import DESIGN_SPACES


class TestDseList:
    def test_markdown_listing(self, capsys):
        assert main(["dse", "list"]) == 0
        out = capsys.readouterr().out
        assert "design spaces registered" in out
        for name in DESIGN_SPACES:
            assert f"| {name} |" in out

    def test_json_listing(self, capsys):
        assert main(["dse", "list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["space"] for entry in payload] == list(DESIGN_SPACES)
        assert all(entry["smoke_points"] <= entry["points"] for entry in payload)


class TestDseRun:
    def test_smoke_run_emits_frontier_table_under_60s(self, capsys, tmp_path):
        started = time.monotonic()
        assert main(["dse", "run", "--smoke", "--cache-dir", str(tmp_path)]) == 0
        elapsed = time.monotonic() - started
        out = capsys.readouterr().out
        assert "### Pareto frontier" in out
        assert "| pareto |" in out and "| True |" in out
        assert elapsed < 60, f"dse smoke run took {elapsed:.1f}s (budget 60s)"

    def test_run_named_space_json(self, capsys, tmp_path):
        assert main([
            "dse", "run", "memory", "--smoke", "--format", "json",
            "--cache-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "dse_sweep"
        assert payload["provenance"]["params"]["space"] == "memory"
        assert all("pareto" in row for row in payload["rows"])

    def test_run_rejects_unknown_space(self, capsys, tmp_path):
        assert main([
            "dse", "run", "warpspeed", "--smoke", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "unknown design space" in capsys.readouterr().err

    def test_malformed_option_values_are_one_line_errors(self, capsys, tmp_path):
        # Unparsable list options must exit 2 with `error: ...`, no traceback.
        assert main([
            "dse", "run", "--smoke", "--batch-sizes", "abc",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "cannot parse --batch-sizes" in capsys.readouterr().err
        assert main([
            "dse", "plan", "--smoke", "--chips", "abc",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "cannot parse --chips" in capsys.readouterr().err

    def test_duplicate_workloads_rejected_cleanly(self, capsys, tmp_path):
        assert main([
            "dse", "run", "--smoke", "--workloads", "nvsa,nvsa",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "duplicate workloads" in capsys.readouterr().err


class TestStrayOptionRejection:
    """Options that cannot apply to an action must error, never be dropped."""

    def test_plan_rejects_positional_space(self, capsys):
        assert main(["dse", "plan", "pe_array", "--smoke"]) == 2
        err = capsys.readouterr().err
        assert "does not accept" in err and "pe_array" in err

    def test_run_rejects_plan_only_flags(self, capsys):
        assert main(["dse", "run", "--smoke", "--requests", "100"]) == 2
        assert "--requests" in capsys.readouterr().err
        assert main(["dse", "frontier", "--smoke", "--chips", "1,2"]) == 2
        assert "--chips" in capsys.readouterr().err

    def test_plan_rejects_sweep_only_flags(self, capsys):
        assert main(["dse", "plan", "--smoke", "--workloads", "nvsa"]) == 2
        assert "--workloads" in capsys.readouterr().err

    def test_list_rejects_everything_but_format(self, capsys):
        assert main(["dse", "list", "--smoke"]) == 2
        assert "--smoke" in capsys.readouterr().err

    def test_run_workload_and_objective_overrides(self, capsys, tmp_path):
        assert main([
            "dse", "run", "frequency", "--smoke", "--workloads", "mimonet",
            "--objectives", "latency_ms:min", "--format", "json",
            "--cache-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["workload"] for row in payload["rows"]} == {"mimonet"}
        # A single minimized objective keeps exactly one frontier design
        # (the fastest; ties impossible across distinct frequencies).
        assert sum(row["pareto"] for row in payload["rows"]) == 1


class TestDseFrontier:
    def test_frontier_rows_all_on_frontier(self, capsys, tmp_path):
        assert main([
            "dse", "frontier", "--smoke", "--format", "json",
            "--cache-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "dse_frontier"
        assert payload["rows"], "smoke frontier must not be empty"
        assert all("objectives" in row for row in payload["rows"])
        assert all("pareto" not in row for row in payload["rows"])


class TestDsePlan:
    def test_plan_prints_recommendation(self, capsys, tmp_path):
        assert main(["dse", "plan", "--smoke", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "### Recommendation" in out
        assert "recommended:" in out

    def test_plan_overrides_and_json(self, capsys, tmp_path):
        assert main([
            "dse", "plan", "--smoke", "--chips", "1", "--requests", "80",
            "--format", "json", "--cache-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "dse_capacity"
        assert {row["chips"] for row in payload["rows"]} == {1}
        assert payload["provenance"]["params"]["requests"] == 80

    def test_impossible_target_reports_no_plan(self, capsys, tmp_path):
        assert main([
            "dse", "plan", "--smoke", "--target-p99", "0.0001",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert "no configuration meets the target" in capsys.readouterr().out


@pytest.mark.parametrize("space", list(DESIGN_SPACES))
def test_every_space_smoke_runs_through_the_cli(space, capsys, tmp_path):
    """`repro dse run SPACE --smoke` works for every built-in space."""
    assert main([
        "dse", "run", space, "--smoke", "--format", "json",
        "--cache-dir", str(tmp_path),
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rows"]
