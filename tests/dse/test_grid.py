"""Tests for design-space grids and CustomSpec expansion."""

import pytest

from repro.backends import get_backend
from repro.dse import (
    DESIGN_SPACES,
    Axis,
    DesignPoint,
    DesignSpace,
    describe_design_spaces,
    design_space_names,
    expand_grid,
    format_axis_value,
    get_design_space,
)
from repro.errors import DesignSpaceError
from repro.workloads import build_workload


class TestAxis:
    def test_unknown_axis_name_rejected(self):
        with pytest.raises(DesignSpaceError, match="unknown design axis"):
            Axis("warp_size", (32, 64))

    def test_empty_and_duplicate_values_rejected(self):
        with pytest.raises(DesignSpaceError, match="no values"):
            Axis("num_cells", ())
        with pytest.raises(DesignSpaceError, match="repeats"):
            Axis("num_cells", (8, 8))

    def test_switch_axes_allowed(self):
        assert Axis("scale_out", (True, False)).label == "so"
        assert Axis("reconfigurable_symbolic", (True, False)).label == "nspe"


class TestExpandGrid:
    def test_cartesian_product_order(self):
        grid = expand_grid(
            (Axis("num_cells", (8, 16)), Axis("simd_pes", (256, 512)))
        )
        assert grid == [
            {"num_cells": 8, "simd_pes": 256},
            {"num_cells": 8, "simd_pes": 512},
            {"num_cells": 16, "simd_pes": 256},
            {"num_cells": 16, "simd_pes": 512},
        ]

    def test_empty_and_duplicate_axes_rejected(self):
        with pytest.raises(DesignSpaceError, match="empty axis list"):
            expand_grid(())
        with pytest.raises(DesignSpaceError, match="duplicate axes"):
            expand_grid((Axis("num_cells", (8,)), Axis("num_cells", (16,))))


class TestFormatAxisValue:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (True, "1"),
            (False, "0"),
            (700e9, "700G"),
            (0.8e9, "0.8G"),
            (4_000_000.0, "4M"),
            (512, "512"),
            (0.5, "0.5"),
        ],
    )
    def test_compact_rendering(self, value, expected):
        assert format_axis_value(value) == expected


class TestDesignPoint:
    def test_name_is_deterministic_and_compact(self):
        point = DesignPoint.from_params(
            "cogsys",
            {"num_cells": 16, "dram_bandwidth_bytes_per_s": 700e9, "scale_out": True},
        )
        assert point.name == "cells16-bw700G-so1"

    def test_spec_builds_working_backend(self):
        point = DesignPoint.from_params(
            "pe_array", {"num_cells": 8, "simd_pes": 256, "scale_out": False}
        )
        backend = get_backend(point.spec())
        assert backend.name == "pe_array:cells8-simd256-so0"
        assert backend.accelerator.config.num_cells == 8
        assert backend.accelerator.config.simd_pes == 256
        assert backend.accelerator.scale_out is False
        report = backend.execute(build_workload("nvsa", num_tasks=1))
        assert report.total_seconds > 0


class TestDesignSpace:
    def test_smoke_axes_must_subset_full_axes(self):
        with pytest.raises(DesignSpaceError, match="smoke axes"):
            DesignSpace(
                name="bad",
                description="",
                axes=(Axis("num_cells", (8, 16)),),
                smoke_axes=(Axis("simd_pes", (512,)),),
            )

    def test_points_match_num_points(self):
        for space in DESIGN_SPACES.values():
            for smoke in (False, True):
                points = space.points(smoke=smoke)
                assert len(points) == space.num_points(smoke=smoke)
                assert len({point.name for point in points}) == len(points)

    def test_every_builtin_point_expands_to_a_custom_spec(self):
        for space in DESIGN_SPACES.values():
            for point in space.points(smoke=True):
                spec = point.spec()
                assert spec.cogsys_config is not None
                assert spec.name == f"{space.name}:{point.name}"

    def test_smoke_grids_are_small(self):
        for space in DESIGN_SPACES.values():
            assert space.num_points(smoke=True) <= 8
            assert space.num_points(smoke=True) <= space.num_points()


class TestRegistry:
    def test_lookup_and_names(self):
        assert set(design_space_names()) == set(DESIGN_SPACES)
        assert get_design_space("pe_array") is DESIGN_SPACES["pe_array"]
        with pytest.raises(DesignSpaceError, match="unknown design space"):
            get_design_space("nope")

    def test_describe_rows_are_json_clean(self):
        import json

        rows = describe_design_spaces()
        assert [row["space"] for row in rows] == list(DESIGN_SPACES)
        json.dumps(rows)  # must not raise
