"""Tests for the serving capacity planner."""

import pytest

from repro.dse import PLANNER_OBJECTIVES, dominates, plan_capacity, recommend
from repro.errors import DesignSpaceError

SMOKE = dict(
    chip_counts=(1, 2),
    routers=("jsq",),
    policies=("none", "continuous"),
    requests=120,
)


@pytest.fixture(scope="module")
def plan_rows():
    """One shared smoke-scale capacity plan."""
    return plan_capacity(**SMOKE)


class TestPlanRows:
    def test_covers_the_whole_configuration_grid(self, plan_rows):
        configs = {(row["chips"], row["router"], row["policy"]) for row in plan_rows}
        assert configs == {
            (chips, "jsq", policy)
            for chips in (1, 2)
            for policy in ("none", "continuous")
        }

    def test_fleet_power_scales_with_chips(self, plan_rows):
        by_chips = {row["chips"]: row["fleet_power_w"] for row in plan_rows}
        assert by_chips[2] == pytest.approx(2 * by_chips[1])

    def test_meets_target_consistent_with_metrics(self, plan_rows):
        for row in plan_rows:
            expected = row["p99_ms"] <= 5.0 and row["slo_attainment"] >= 0.99
            assert row["meets_target"] == expected

    def test_pareto_rows_non_dominated(self, plan_rows):
        for row in plan_rows:
            if row["pareto"]:
                assert not any(
                    dominates(other, row, PLANNER_OBJECTIVES)
                    for other in plan_rows
                )

    def test_determinism(self, plan_rows):
        assert plan_capacity(**SMOKE) == plan_rows


class TestRecommend:
    def test_cheapest_passing_config_wins(self, plan_rows):
        best = recommend(plan_rows)
        meeting = [row for row in plan_rows if row["meets_target"]]
        assert meeting and best is not None
        assert best["fleet_power_w"] == min(row["fleet_power_w"] for row in meeting)

    def test_impossible_target_recommends_nothing(self):
        rows = plan_capacity(target_p99_ms=1e-6, **SMOKE)
        assert all(not row["meets_target"] for row in rows)
        assert recommend(rows) is None

    def test_recommend_on_empty_rows(self):
        assert recommend([]) is None

    def test_chipless_row_loses_ties(self):
        # A row missing the ``chips`` key must sort as worst on the
        # chip-count tie-break, not beat every real candidate.
        base = {
            "fleet_power_w": 100.0,
            "goodput_rps": 500.0,
            "meets_target": True,
        }
        chipless = dict(base)
        real = dict(base, chips=4)
        assert recommend([chipless, real])["chips"] == 4
        assert recommend([real, chipless])["chips"] == 4

    def test_empty_traffic_draw_is_a_typed_error(self):
        # requests=1 with this seed draws zero Poisson arrivals; the planner
        # must name the bad parameters instead of crashing in the simulator.
        with pytest.raises(DesignSpaceError, match="produced no requests"):
            plan_capacity(
                chip_counts=(1,), routers=("jsq",), policies=("none",),
                requests=1, seed=1,
            )


class TestValidation:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(offered_rps=0), "offered_rps"),
            (dict(target_p99_ms=0), "target_p99_ms"),
            (dict(target_attainment=0), "target_attainment"),
            (dict(requests=0), "requests"),
            (dict(chip_counts=()), "at least one"),
            (dict(chip_counts=(0,)), "chip counts"),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs, match):
        merged = {**SMOKE, **kwargs}
        with pytest.raises(DesignSpaceError, match=match):
            plan_capacity(**merged)


class TestCapacityPlanDriver:
    def test_recommended_column_marks_single_row(self):
        from repro.evaluation.dse_experiments import capacity_plan

        rows = capacity_plan(**SMOKE)
        recommended = [row for row in rows if row["recommended"]]
        assert len(recommended) == 1
        assert recommended[0]["meets_target"]
