"""Tests for design-space sweeps: determinism, cache reuse, pareto groups."""

import pytest

from repro.dse import (
    DEFAULT_OBJECTIVES,
    DesignSpaceSweeper,
    dominates,
    get_design_space,
    sweep,
)
from repro.errors import DesignSpaceError

EXPECTED_COLUMNS = {
    "design",
    "workload",
    "batch",
    "latency_ms",
    "throughput_tps",
    "energy_mj_per_task",
    "power_w",
    "area_mm2",
    "occupancy",
    "pareto",
}


@pytest.fixture(scope="module")
def smoke_rows():
    """One shared smoke sweep (pe_array, nvsa, batches 1+4)."""
    return sweep("pe_array", workloads=("nvsa",), batch_sizes=(1, 4), smoke=True)


class TestSweepRows:
    def test_row_count_and_columns(self, smoke_rows):
        space = get_design_space("pe_array")
        assert len(smoke_rows) == space.num_points(smoke=True) * 2
        for row in smoke_rows:
            assert EXPECTED_COLUMNS <= set(row)

    def test_rows_in_grid_expansion_order(self, smoke_rows):
        space = get_design_space("pe_array")
        expected = [
            (point.name, batch)
            for point in space.points(smoke=True)
            for batch in (1, 4)
        ]
        assert [(row["design"], row["batch"]) for row in smoke_rows] == expected

    def test_pareto_annotation_is_per_group(self, smoke_rows):
        for batch in (1, 4):
            group = [row for row in smoke_rows if row["batch"] == batch]
            frontier = [row for row in group if row["pareto"]]
            assert frontier, "every group keeps at least one non-dominated design"
            for row in frontier:
                assert not any(
                    dominates(other, row, DEFAULT_OBJECTIVES) for other in group
                )
            for row in group:
                if not row["pareto"]:
                    assert any(
                        dominates(other, row, DEFAULT_OBJECTIVES) for other in group
                    )

    def test_batching_amortizes_energy(self, smoke_rows):
        by_design: dict[str, dict[int, dict]] = {}
        for row in smoke_rows:
            by_design.setdefault(row["design"], {})[row["batch"]] = row
        for batches in by_design.values():
            assert (
                batches[4]["energy_mj_per_task"] <= batches[1]["energy_mj_per_task"]
            )

    def test_determinism(self, smoke_rows):
        again = sweep("pe_array", workloads=("nvsa",), batch_sizes=(1, 4), smoke=True)
        assert again == smoke_rows


class TestSweepValidation:
    def test_unknown_space_workload_and_bad_batches(self):
        with pytest.raises(DesignSpaceError, match="unknown design space"):
            sweep("nope", smoke=True)
        with pytest.raises(DesignSpaceError, match="unknown workload"):
            sweep("pe_array", workloads=("resnet",), smoke=True)
        with pytest.raises(DesignSpaceError, match="batch sizes must be positive"):
            sweep("pe_array", batch_sizes=(0,), smoke=True)
        with pytest.raises(DesignSpaceError, match="at least one workload"):
            sweep("pe_array", workloads=(), smoke=True)
        with pytest.raises(DesignSpaceError, match="at least one batch size"):
            sweep("pe_array", batch_sizes=(), smoke=True)

    def test_duplicate_workloads_and_batches_rejected(self):
        # Silent duplicates would double every row in the output tables.
        with pytest.raises(DesignSpaceError, match="duplicate workloads"):
            sweep("pe_array", workloads=("nvsa", "nvsa"), smoke=True)
        with pytest.raises(DesignSpaceError, match="duplicate batch sizes"):
            sweep("pe_array", batch_sizes=(1, 1), smoke=True)


class TestCacheReuse:
    def test_shared_sweeper_never_resimulates(self):
        sweeper = DesignSpaceSweeper()
        first = sweep(
            "pe_array", workloads=("nvsa",), batch_sizes=(1,), smoke=True,
            sweeper=sweeper,
        )
        simulated = sweeper.cached_reports
        assert simulated == len(first)
        second = sweep(
            "pe_array", workloads=("nvsa",), batch_sizes=(1,), smoke=True,
            sweeper=sweeper,
        )
        assert second == first
        assert sweeper.cached_reports == simulated  # pure cache hits

    def test_sweeper_extends_incrementally(self):
        sweeper = DesignSpaceSweeper()
        sweep(
            "pe_array", workloads=("nvsa",), batch_sizes=(1,), smoke=True,
            sweeper=sweeper,
        )
        baseline = sweeper.cached_reports
        # A second batch size only adds the new (design, workload, batch)
        # points; the batch-1 reports are reused.
        sweep(
            "pe_array", workloads=("nvsa",), batch_sizes=(1, 2), smoke=True,
            sweeper=sweeper,
        )
        assert sweeper.cached_reports == 2 * baseline

    def test_scheduler_threads_through(self):
        adaptive = sweep(
            "frequency", workloads=("nvsa",), batch_sizes=(1,), smoke=True
        )
        sequential = sweep(
            "frequency", workloads=("nvsa",), batch_sizes=(1,), smoke=True,
            scheduler="sequential",
        )
        assert all(
            seq["latency_ms"] >= ada["latency_ms"]
            for seq, ada in zip(sequential, adaptive)
        )


class TestEngineIntegration:
    def test_dse_sweep_spec_caches_byte_identically(self, tmp_path):
        from repro.evaluation import engine

        cold = engine.run(
            "dse_sweep", cache_dir=tmp_path, grid="smoke", batch_sizes=(1,)
        )
        assert cold.provenance["cache"] == "miss"
        warm = engine.run(
            "dse_sweep", cache_dir=tmp_path, grid="smoke", batch_sizes=(1,)
        )
        assert warm.provenance["cache"] == "hit"
        assert warm.rows == cold.rows
        assert warm.to_markdown() == cold.to_markdown()

    def test_grid_parameter_validated(self):
        from repro.evaluation import engine

        with pytest.raises(DesignSpaceError, match="grid must be"):
            engine.run("dse_sweep", use_cache=False, grid="huge")
