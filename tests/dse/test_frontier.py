"""Tests for Pareto dominance and frontier reduction (incl. property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    Objective,
    annotate_pareto,
    dominates,
    format_objectives,
    pareto_frontier,
    parse_objectives,
)
from repro.errors import DesignSpaceError

MIN_MIN = (Objective("x", "min"), Objective("y", "min"))


class TestObjective:
    def test_invalid_sense_rejected(self):
        with pytest.raises(DesignSpaceError, match="unknown sense"):
            Objective("x", "maximize")

    def test_missing_and_non_numeric_keys_raise(self):
        objective = Objective("x")
        with pytest.raises(DesignSpaceError, match="missing objective key"):
            objective.value({"y": 1.0})
        with pytest.raises(DesignSpaceError, match="not numeric"):
            objective.value({"x": "fast"})


class TestParseObjectives:
    def test_round_trip(self):
        objectives = parse_objectives("latency_ms:min, goodput_rps:max")
        assert objectives == (
            Objective("latency_ms", "min"),
            Objective("goodput_rps", "max"),
        )
        assert format_objectives(objectives) == "latency_ms:min,goodput_rps:max"

    def test_sense_defaults_to_min(self):
        assert parse_objectives("latency_ms") == (Objective("latency_ms", "min"),)

    def test_empty_and_duplicate_rejected(self):
        with pytest.raises(DesignSpaceError, match="no objectives"):
            parse_objectives(" , ")
        with pytest.raises(DesignSpaceError, match="duplicate objective"):
            parse_objectives("x:min,x:max")


class TestDominates:
    def test_strictly_better_on_one_axis(self):
        assert dominates({"x": 1, "y": 1}, {"x": 2, "y": 1}, MIN_MIN)

    def test_identical_rows_do_not_dominate(self):
        row = {"x": 1, "y": 1}
        assert not dominates(row, dict(row), MIN_MIN)

    def test_tradeoff_rows_do_not_dominate(self):
        assert not dominates({"x": 1, "y": 2}, {"x": 2, "y": 1}, MIN_MIN)
        assert not dominates({"x": 2, "y": 1}, {"x": 1, "y": 2}, MIN_MIN)

    def test_max_sense_flips_direction(self):
        objectives = (Objective("throughput", "max"),)
        assert dominates({"throughput": 2}, {"throughput": 1}, objectives)
        assert not dominates({"throughput": 1}, {"throughput": 2}, objectives)

    def test_no_objectives_rejected(self):
        with pytest.raises(DesignSpaceError, match="at least one objective"):
            dominates({"x": 1}, {"x": 2}, ())


class TestFrontier:
    def test_known_frontier(self):
        rows = [
            {"x": 1.0, "y": 3.0},  # frontier
            {"x": 2.0, "y": 2.0},  # frontier
            {"x": 3.0, "y": 1.0},  # frontier
            {"x": 3.0, "y": 3.0},  # dominated by (1,3)/(2,2)/(3,1)
        ]
        assert pareto_frontier(rows, MIN_MIN) == rows[:3]

    def test_exact_ties_both_survive(self):
        rows = [{"x": 1.0}, {"x": 1.0}, {"x": 2.0}]
        assert pareto_frontier(rows, (Objective("x"),)) == rows[:2]

    def test_annotate_preserves_order_and_flags(self):
        rows = [{"x": 2.0}, {"x": 1.0}]
        annotated = annotate_pareto(rows, (Objective("x"),))
        assert [row["x"] for row in annotated] == [2.0, 1.0]
        assert [row["pareto"] for row in annotated] == [False, True]


# -- property tests: the acceptance-level non-dominance guarantee -------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
row_lists = st.lists(
    st.fixed_dictionaries({"x": finite, "y": finite, "z": finite}),
    min_size=1,
    max_size=24,
)
objective_sets = st.lists(
    st.sampled_from(
        [Objective("x", "min"), Objective("y", "max"), Objective("z", "min")]
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda objective: objective.key,
)


@settings(max_examples=120, deadline=None)
@given(rows=row_lists, objectives=objective_sets)
def test_frontier_points_are_never_dominated(rows, objectives):
    """No row in the frontier is dominated by any row of the input."""
    frontier = pareto_frontier(rows, objectives)
    assert frontier, "a non-empty row set always has a non-dominated point"
    for member in frontier:
        assert not any(dominates(row, member, objectives) for row in rows)


@settings(max_examples=120, deadline=None)
@given(rows=row_lists, objectives=objective_sets)
def test_dominated_rows_are_dominated_by_a_frontier_member(rows, objectives):
    """Every excluded row is dominated by at least one frontier member."""
    frontier = pareto_frontier(rows, objectives)
    frontier_ids = {id(row) for row in frontier}
    for row in rows:
        if id(row) not in frontier_ids:
            assert any(dominates(member, row, objectives) for member in frontier)


@settings(max_examples=60, deadline=None)
@given(rows=row_lists, objectives=objective_sets)
def test_annotate_matches_frontier_membership(rows, objectives):
    """``annotate_pareto`` flags exactly the frontier rows, in input order."""
    annotated = annotate_pareto(rows, objectives)
    frontier = pareto_frontier(rows, objectives)
    assert [row for row in annotated if row["pareto"]] == [
        {**row, "pareto": True} for row in frontier
    ]
    assert [
        {key: value for key, value in row.items() if key != "pareto"}
        for row in annotated
    ] == rows
