"""Golden-file snapshot tests for docs-facing CLI output.

``repro backends`` (the listing and a single-backend describe) and
``repro report --smoke`` feed documentation directly — README tables,
EXPERIMENTS.md and the CI gates are downstream of them — so their exact
rendering is pinned to golden files under ``tests/evaluation/golden/``.
A deliberate change regenerates them with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/evaluation/test_golden_docs.py

and the diff lands in review like any other code change.
"""

import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.evaluation.registry import all_specs
from repro.evaluation.report import _HEADER, build_report

GOLDEN_DIR = Path(__file__).parent / "golden"


def _assert_matches_golden(name: str, actual: str) -> None:
    """Compare against (or, under UPDATE_GOLDEN=1, rewrite) a golden file."""
    path = GOLDEN_DIR / name
    if os.environ.get("UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
    assert path.is_file(), (
        f"golden file {path} missing; regenerate with UPDATE_GOLDEN=1"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"{name} drifted from its golden snapshot; if the change is "
        f"intentional, regenerate with UPDATE_GOLDEN=1"
    )


class TestBackendsGolden:
    def test_backends_listing_markdown(self, capsys):
        assert main(["backends"]) == 0
        _assert_matches_golden("backends_list.md", capsys.readouterr().out)

    def test_backends_describe_cogsys_markdown(self, capsys):
        assert main(["backends", "cogsys"]) == 0
        _assert_matches_golden("backends_describe_cogsys.md", capsys.readouterr().out)


class TestReportGolden:
    def test_smoke_report_markdown(self, session_cache_dir):
        """The full smoke-scale report renders byte-identically.

        Uses the session-shared result cache, so the heavy drivers run at
        most once per test session regardless of test order.
        """
        document = build_report(smoke=True, cache_dir=session_cache_dir)
        _assert_matches_golden("report_smoke.md", document)


class TestCheckedInReportStructure:
    """Cheap guards that EXPERIMENTS.md tracks the registry (full regen is CI's job)."""

    @pytest.fixture(scope="class")
    def experiments_md(self):
        """The checked-in paper-vs-measured document."""
        return (Path(__file__).parents[2] / "EXPERIMENTS.md").read_text()

    def test_header_matches_report_builder(self, experiments_md):
        assert experiments_md.startswith(_HEADER)

    def test_one_section_per_registered_spec_in_order(self, experiments_md):
        sections = [
            line[3:]
            for line in experiments_md.splitlines()
            if line.startswith("## ")
        ]
        assert sections == [spec.title for spec in all_specs()]

    def test_paper_notes_present(self, experiments_md):
        for spec in all_specs():
            if spec.paper_note:
                assert spec.paper_note in experiments_md, spec.id
