"""Tests for the caching/parallel execution engine."""

import json

import pytest

from repro.evaluation import engine
from repro.evaluation.engine import (
    ResultTable,
    UnknownParameterError,
    cache_info,
    cache_stats,
    clear_cache,
    run,
    run_many,
)
from repro.evaluation.registry import UnknownExperimentError


class TestCaching:
    def test_cache_hit_returns_identical_rows(self, tmp_path):
        cold = run("fig12", cache_dir=tmp_path, cases=((210, 1024), (1, 2048)))
        warm = run("fig12", cache_dir=tmp_path, cases=((210, 1024), (1, 2048)))
        assert cold.provenance["cache"] == "miss"
        assert warm.provenance["cache"] == "hit"
        assert warm.rows == cold.rows
        assert warm.headers == cold.headers

    def test_cache_key_distinguishes_params(self, tmp_path):
        small = run("tab04", cache_dir=tmp_path, vector_dim=128)
        large = run("tab04", cache_dir=tmp_path, vector_dim=256)
        assert small.provenance["cache"] == large.provenance["cache"] == "miss"
        assert small.rows != large.rows

    def test_no_cache_bypasses_disk(self, tmp_path):
        table = run("tab04", use_cache=False, cache_dir=tmp_path, vector_dim=128)
        assert table.provenance["cache"] == "off"
        assert not list(tmp_path.glob("*.json"))

    def test_cache_info_and_clear(self, tmp_path):
        run("tab04", cache_dir=tmp_path, vector_dim=128)
        info = cache_info(tmp_path)
        assert info["entries"] == 1 and info["total_bytes"] > 0
        assert clear_cache(tmp_path) == 1
        assert cache_info(tmp_path)["entries"] == 0

    def test_cache_stats_breaks_entries_down_by_experiment(self, tmp_path):
        run("tab04", cache_dir=tmp_path, vector_dim=128)
        run("tab04", cache_dir=tmp_path, vector_dim=256)
        run("fig12", cache_dir=tmp_path, cases=((210, 1024),))
        stats = cache_stats(tmp_path)
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert set(stats["experiments"]) == {"tab04", "fig12"}
        assert stats["experiments"]["tab04"]["entries"] == 2
        assert stats["experiments"]["fig12"]["entries"] == 1
        per_experiment_bytes = sum(
            entry["bytes"] for entry in stats["experiments"].values()
        )
        assert per_experiment_bytes == stats["total_bytes"]

    def test_cache_stats_on_missing_directory_is_empty(self, tmp_path):
        stats = cache_stats(tmp_path / "nope")
        assert stats["entries"] == 0
        assert stats["experiments"] == {}


class TestRunMany:
    IDS = ["tab04", "fig12", "fig11c"]
    OVERRIDES = {
        "tab04": {"vector_dim": 128},
        "fig12": {"cases": ((210, 1024), (1, 2048))},
        "fig11c": {"vector_dim": 256},
    }

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_many(
            self.IDS, use_cache=False, overrides_by_id=self.OVERRIDES
        )
        parallel = run_many(
            self.IDS,
            workers=2,
            use_cache=False,
            overrides_by_id=self.OVERRIDES,
        )
        assert [t.experiment_id for t in parallel] == self.IDS
        for serial_table, parallel_table in zip(serial, parallel):
            assert parallel_table.rows == serial_table.rows
            assert parallel_table.headers == serial_table.headers

    def test_workers_share_cache(self, tmp_path):
        run_many(
            self.IDS, workers=2, cache_dir=tmp_path, overrides_by_id=self.OVERRIDES
        )
        warm = run_many(
            self.IDS, workers=2, cache_dir=tmp_path, overrides_by_id=self.OVERRIDES
        )
        assert all(table.provenance["cache"] == "hit" for table in warm)

    def test_empty_ids_return_an_empty_list(self):
        # Regression: an empty job list used to be able to reach
        # ProcessPoolExecutor(max_workers=0), which raises ValueError.
        assert run_many([]) == []
        assert run_many([], workers=4) == []

    def test_empty_ids_with_overrides_raise(self):
        with pytest.raises(UnknownParameterError, match="not being run"):
            run_many([], workers=4, overrides_by_id={"tab04": {"vector_dim": 128}})

    def test_bad_override_fails_before_spawning_workers(self):
        with pytest.raises(UnknownParameterError):
            run_many(["tab04"], workers=2, overrides_by_id={"tab04": {"nope": 1}})

    def test_overrides_for_unrequested_id_raise(self):
        # A typo'd key would otherwise silently run (and cache) defaults.
        with pytest.raises(UnknownParameterError, match="not being run"):
            run_many(["tab04"], overrides_by_id={"tab4": {"vector_dim": 128}})


class TestValidation:
    def test_unknown_experiment_raises(self):
        with pytest.raises(UnknownExperimentError):
            run("not_an_experiment")

    def test_unknown_parameter_raises(self):
        with pytest.raises(UnknownParameterError, match="no parameter"):
            run("tab04", use_cache=False, grid_size=3)


class TestResultTable:
    @pytest.fixture
    def table(self, tmp_path):
        return run("tab04", cache_dir=tmp_path, vector_dim=128)

    def test_markdown_render(self, table):
        lines = table.to_markdown().splitlines()
        assert lines[0].startswith("| accelerator |")
        assert len(lines) == 2 + len(table)

    def test_csv_render(self, table):
        lines = table.to_csv().strip().splitlines()
        assert lines[0].split(",")[0] == "accelerator"
        assert len(lines) == 1 + len(table)

    def test_json_render_roundtrips(self, table):
        payload = json.loads(table.to_json())
        assert payload["experiment"] == "tab04"
        assert payload["rows"] == table.rows
        assert payload["provenance"]["params"] == {"vector_dim": 128}

    def test_render_dispatch(self, table):
        assert table.render("md") == table.to_markdown()
        assert table.render("csv") == table.to_csv()
        assert table.render("json") == table.to_json()
        with pytest.raises(ValueError):
            table.render("xml")

    def test_missing_keys_render_empty(self):
        table = ResultTable(
            experiment_id="x",
            title="x",
            anchor="fig01",
            headers=["a", "b"],
            rows=[{"a": 1}, {"a": 2, "b": 3}],
        )
        assert table.cells() == [[1, ""], [2, 3]]


class TestCodeVersionInvalidation:
    def test_code_version_feeds_cache_key(self, tmp_path, monkeypatch):
        from repro.evaluation.registry import get_spec

        spec = get_spec("tab04")
        run(spec, cache_dir=tmp_path, vector_dim=128)
        monkeypatch.setattr(engine, "code_version", lambda _spec: "0.0.0+deadbeef")
        stale = run(spec, cache_dir=tmp_path, vector_dim=128)
        # The old entry no longer matches, so the driver re-runs.
        assert stale.provenance["cache"] == "miss"
        assert cache_info(tmp_path)["entries"] == 2
