"""Tests for the declarative experiment registry."""

import importlib
import re

import pytest

from repro.evaluation import experiments
from repro.evaluation.engine import run
from repro.evaluation.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    UnknownExperimentError,
    all_specs,
    get_spec,
    register,
    registered_drivers,
    specs_by_tag,
)


class TestRegistryCompleteness:
    def test_covers_at_least_twenty_experiments(self):
        assert len(all_specs()) >= 20

    def test_every_exported_driver_registered_exactly_once(self):
        drivers = registered_drivers()
        for name in experiments.__all__:
            driver = getattr(experiments, name)
            occurrences = sum(1 for registered in drivers if registered is driver)
            assert occurrences == 1, f"driver '{name}' registered {occurrences} times"
        # ... and the registry holds nothing beyond the exported drivers.
        assert len(drivers) == len(experiments.__all__)

    def test_ids_and_anchors_are_well_formed(self):
        ids = [spec.id for spec in all_specs()]
        assert len(ids) == len(set(ids))
        for spec in all_specs():
            # Paper anchors (fig/tab + number) plus the beyond-the-paper
            # serving and design-space-exploration experiment families.
            assert re.fullmatch(r"(fig|tab)\d{2}|serving|dse", spec.anchor), spec.anchor
            assert spec.title
            assert spec.tags

    def test_every_driver_is_importable_by_path(self):
        for spec in all_specs():
            module = importlib.import_module(spec.driver.__module__)
            assert getattr(module, spec.driver.__name__) is spec.driver

    def test_specs_by_tag_partitions_registry(self):
        tagged = {spec.id
                  for tag in ("characterization", "accuracy", "hardware", "e2e",
                              "serving", "dse")
                  for spec in specs_by_tag(tag)}
        assert tagged == set(EXPERIMENTS)

    def test_get_spec_unknown_id_raises(self):
        with pytest.raises(UnknownExperimentError):
            get_spec("fig99")


class TestServeHeteroSpec:
    def test_registered_under_the_serving_tag_with_scaled_params(self):
        spec = get_spec("serve_hetero")
        assert "serving" in spec.tags
        assert spec.anchor == "serving"
        assert spec.smoke_params.get("duration_scale") == 0.2
        assert spec.report_params.get("duration_scale") == 1.0
        assert {"backends", "scenario", "router"} <= set(spec.param_schema)

    def test_rows_carry_per_backend_utilization(self, session_cache_dir):
        table = run(
            get_spec("serve_hetero"),
            use_cache=True,
            cache_dir=session_cache_dir,
            duration_scale=0.1,
        )
        backends = [row["backend"] for row in table.rows]
        assert backends[0] == "(fleet)"
        assert backends[1:] == sorted(backends[1:])
        assert {"cogsys", "a100", "xavier_nx"} <= set(backends[1:])
        assert all("utilization" in row for row in table.rows)


class TestRegistration:
    def test_register_rejects_duplicate_id(self):
        spec = get_spec("tab04")
        with pytest.raises(ValueError, match="duplicate experiment id"):
            register(
                ExperimentSpec(
                    id="tab04",
                    title="dup",
                    anchor="tab04",
                    driver=lambda: [],
                    tags=("hardware",),
                )
            )
        assert get_spec("tab04") is spec

    def test_register_rejects_duplicate_driver(self):
        spec = get_spec("tab04")
        with pytest.raises(ValueError, match="already registered"):
            register(
                ExperimentSpec(
                    id="tab04_copy",
                    title="dup",
                    anchor="tab04",
                    driver=spec.driver,
                    tags=("hardware",),
                )
            )
        assert "tab04_copy" not in EXPERIMENTS

    def test_spec_rejects_unknown_tag(self):
        with pytest.raises(ValueError, match="unknown tags"):
            ExperimentSpec(
                id="x", title="x", anchor="fig01", driver=lambda: [], tags=("nope",)
            )

    def test_spec_rejects_params_outside_schema(self):
        with pytest.raises(ValueError, match="missing from its schema"):
            ExperimentSpec(
                id="x",
                title="x",
                anchor="fig01",
                driver=lambda: [],
                tags=("hardware",),
                smoke_params={"num_tasks": 1},
            )


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_smoke_run_every_spec(experiment_id, session_cache_dir):
    """Every registered spec executes at smoke scale and yields a real table."""
    spec = get_spec(experiment_id)
    table = run(
        spec,
        use_cache=True,
        cache_dir=session_cache_dir,
        **spec.smoke_params,
    )
    assert table.experiment_id == experiment_id
    assert table.rows, f"'{experiment_id}' produced no rows"
    assert table.headers
    for row in table.rows:
        assert isinstance(row, dict) and row
    # Rows survived the engine's JSON normalisation: plain types only.
    for row in table.rows:
        for value in row.values():
            assert isinstance(value, (str, int, float, bool, type(None), list))
