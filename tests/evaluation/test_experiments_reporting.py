"""Tests for the experiment drivers and the reporting helpers."""

import pytest

from repro.evaluation import experiments, format_markdown_table
from repro.evaluation.reporting import format_value


class TestReporting:
    def test_markdown_table_structure(self):
        table = format_markdown_table(["a", "b"], [[1, 2.5], ["x", 0.000001]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert len(lines) == 4

    def test_format_value_floats(self):
        assert format_value(0.5) == "0.500"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value("text") == "text"
        assert format_value(0) == "0"


class TestCheapExperiments:
    """Fast experiment drivers (the heavier ones are covered by benchmarks/)."""

    def test_characterization_memory_rows(self):
        rows = experiments.characterization_memory()
        assert {row["workload"] for row in rows} == {"nvsa", "mimonet", "lvrf", "prae"}
        assert all(row["total_mb"] > 0 for row in rows)

    def test_kernel_profile_is_published_table(self):
        assert experiments.kernel_profile() is not experiments.KERNEL_PROFILE  # copy

    def test_accelerator_comparison_footprints(self):
        rows = experiments.accelerator_comparison(vector_dim=256)
        assert rows[0]["footprint_bytes"] > rows[1]["footprint_bytes"]

    def test_bs_dataflow_comparison_speedup(self):
        result = experiments.bs_dataflow_comparison(vector_dim=4, num_convs=4)
        assert result["cogsys_cycles"] < result["tpu_like_cycles"]

    def test_st_mapping_chooses_temporal_for_nvsa_case(self):
        rows = experiments.st_mapping_tradeoff(cases=((210, 1024),))
        assert rows[0]["chosen"] == "temporal"

    def test_circconv_sweep_monotone_in_dimension(self):
        rows = experiments.circconv_speedup_sweep(vector_dims=(256, 1024), conv_counts=(1000,))
        assert rows[1]["speedup_vs_tpu"] > rows[0]["speedup_vs_tpu"]

    def test_end_to_end_speedups_single_dataset(self):
        rows = experiments.end_to_end_speedups(datasets=("raven",))
        row = rows[0]
        assert row["rtx2080ti"] > 1.0
        assert row["jetson_tx2"] > row["rtx2080ti"]

    def test_hardware_ablation_ordering(self):
        rows = experiments.hardware_ablation(num_tasks=2)
        for row in rows:
            assert row["cogsys"] < row["without_adsch_so_nspe"] == 1.0

    def test_codesign_ablation_single_dataset(self):
        rows = experiments.codesign_ablation(datasets=("raven",))
        assert rows[0]["cogsys_algorithm_on_cogsys_accelerator"] < 0.2
