"""Shared fixtures for the evaluation-layer tests."""

import pytest


@pytest.fixture(scope="session")
def session_cache_dir(tmp_path_factory):
    """One on-disk result cache shared by every evaluation test.

    Smoke runs populate it, so later cache-behaviour tests get hits without
    re-running heavy drivers.
    """
    return tmp_path_factory.mktemp("repro-result-cache")
