"""Tests for the ``repro`` command-line interface."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import _coerce_param, main
from repro.evaluation import registry


class TestList:
    def test_markdown_listing(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "| tab09 |" in out
        assert "experiments registered" in out
        count = int(out.rsplit("\n", 2)[-2].split()[0])
        assert count >= 20

    def test_json_listing_with_tag(self, capsys):
        assert main(["list", "--tag", "e2e", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["id"] for entry in payload} >= {"fig15", "fig16", "tab10"}
        assert all("e2e" in entry["tags"] for entry in payload)


class TestRun:
    def test_run_markdown_and_cache_hit(self, capsys, tmp_path):
        args = ["run", "tab04", "--param", "vector_dim=256",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "| accelerator |" in first.out
        assert "cache miss" in first.err
        assert main(args) == 0
        assert "cache hit" in capsys.readouterr().err

    def test_run_json_to_output_file(self, tmp_path, capsys):
        output = tmp_path / "tab04.json"
        assert main([
            "run", "tab04", "--param", "vector_dim=128", "--format", "json",
            "--no-cache", "--output", str(output),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(output.read_text())
        assert payload["experiment"] == "tab04"
        assert len(payload["rows"]) == 2

    def test_run_multiple_ids_json_is_one_document(self, tmp_path, capsys):
        output = tmp_path / "both.json"
        assert main([
            "run", "tab04", "fig11c", "--smoke", "--format", "json",
            "--no-cache", "--output", str(output),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(output.read_text())  # must parse as ONE value
        assert [entry["experiment"] for entry in payload] == ["tab04", "fig11c"]

    def test_run_multiple_ids_shared_param_applies_to_all(self, capsys):
        assert main([
            "run", "fig15", "fig16", "--param", "datasets=raven", "--no-cache",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(len(entry["rows"]) == 1 for entry in payload)
        assert all(
            entry["provenance"]["params"] == {"datasets": ["raven"]}
            for entry in payload
        )

    def test_run_multiple_ids_param_scopes_to_declaring_spec(self, capsys):
        # vector_dim exists on tab04 but not fig12 — the run must succeed and
        # apply the override only where the schema declares it.
        assert main([
            "run", "tab04", "fig12", "--smoke", "--param", "vector_dim=256",
            "--no-cache", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_id = {entry["experiment"]: entry for entry in payload}
        assert by_id["tab04"]["provenance"]["params"]["vector_dim"] == 256
        assert "vector_dim" not in by_id["fig12"]["provenance"]["params"]

    def test_run_param_unknown_to_all_specs_is_a_clean_error(self, capsys):
        assert main(["run", "tab04", "fig12", "--param", "bogus=1"]) == 2
        assert "no requested experiment" in capsys.readouterr().err

    def test_run_smoke_uses_spec_smoke_params(self, capsys):
        assert main(["run", "fig04a", "--smoke", "--no-cache"]) == 0
        out = capsys.readouterr().out
        # Smoke scale restricts fig04a to the single GPU device.
        assert "rtx2080ti" in out
        assert "jetson_tx2" not in out

    def test_unknown_id_is_a_clean_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_param_is_a_clean_error(self, capsys):
        assert main(["run", "tab04", "--param", "bogus=1"]) == 2
        assert "no requested experiment has a parameter" in capsys.readouterr().err

    def test_unparsable_param_value_is_a_clean_error(self, capsys):
        assert main(["run", "tab04", "--param", "vector_dim=abc"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_malformed_param_assignment_is_a_clean_error(self, capsys):
        assert main(["run", "tab04", "--param", "vector_dim"]) == 2
        assert "key=value" in capsys.readouterr().err


class TestReport:
    def test_report_smoke_subset(self, tmp_path, capsys, monkeypatch):
        subset = {
            experiment_id: registry.EXPERIMENTS[experiment_id]
            for experiment_id in ("tab04", "fig12")
        }
        monkeypatch.setattr(registry, "EXPERIMENTS", subset)
        output = tmp_path / "EXPERIMENTS.md"
        assert main([
            "report", "--smoke", "--no-cache", "--output", str(output),
        ]) == 0
        capsys.readouterr()
        document = output.read_text()
        assert document.startswith("# EXPERIMENTS")
        assert "Tab. IV" in document and "Fig. 12" in document


class TestCache:
    def test_cache_info_and_clear(self, capsys, tmp_path):
        main(["run", "tab04", "--param", "vector_dim=128",
              "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_cache_action_defaults_to_info(self, capsys, tmp_path):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_stats_flag_prints_per_experiment_breakdown(self, capsys, tmp_path):
        main(["run", "tab04", "--param", "vector_dim=128",
              "--cache-dir", str(tmp_path)])
        main(["run", "fig12", "--smoke", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "--stats", "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert set(payload["experiments"]) == {"tab04", "fig12"}
        # The spelled-out action is equivalent to the flag.
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out) == payload


class TestServe:
    def test_list_enumerates_the_presets(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "diurnal", "flash_crowd", "mixed_workload"):
            assert name in out

    def test_scenario_run_prints_summary_and_breakdown(self, capsys):
        assert main(["serve", "steady", "--duration-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Scenario 'steady'" in out
        assert "| p99_ms |" in out
        assert "| workload |" in out

    def test_scenario_run_json_output(self, capsys):
        assert main([
            "serve", "flash_crowd", "--duration-scale", "0.05",
            "--chips", "1", "--policy", "none", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "flash_crowd"
        assert payload["provenance"]["num_chips"] == 1
        assert payload["provenance"]["batching_policy"] == "none"
        assert payload["summary"]["requests"] > 0

    def test_missing_scenario_is_a_clean_error(self, capsys):
        assert main(["serve"]) == 2
        assert "needs a scenario name" in capsys.readouterr().err

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["serve", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_list_honours_json_format_and_output_file(self, capsys, tmp_path):
        output = tmp_path / "scenarios.json"
        assert main([
            "serve", "--list", "--format", "json", "--output", str(output),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(output.read_text())
        assert {entry["scenario"] for entry in payload} == {
            "steady", "diurnal", "flash_crowd", "mixed_workload", "ramp_surge",
            "mix_shift", "chip_outage", "straggler_storm", "session_surge",
        }

    def test_record_then_replay_roundtrip(self, capsys, tmp_path):
        trace = tmp_path / "steady.jsonl"
        assert main([
            "serve", "steady", "--record", str(trace),
            "--duration-scale", "0.05",
        ]) == 0
        assert "recorded" in capsys.readouterr().err
        assert trace.is_file()
        assert main([
            "serve", "--trace", str(trace), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_info"]["source"]["scenario"] == "steady"
        assert payload["summary"]["requests"] == (
            payload["trace_info"]["num_requests"]
        )
        assert payload["per_workload"]

    def test_trace_replay_honours_fleet_flags(self, capsys, tmp_path):
        trace = tmp_path / "mixed.jsonl"
        assert main([
            "serve", "mixed_workload", "--record", str(trace),
            "--duration-scale", "0.05",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--trace", str(trace), "--chips", "3",
            "--router", "affinity", "--policy", "none",
            "--slo-ms", "8", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["provenance"]["num_chips"] == 3
        assert payload["provenance"]["router"] == "affinity"
        assert payload["provenance"]["batching_policy"] == "none"
        assert payload["summary"]["slo_ms"] == 8.0

    def test_record_needs_a_scenario(self, capsys, tmp_path):
        assert main(["serve", "--record", str(tmp_path / "x.jsonl")]) == 2
        assert "needs a scenario" in capsys.readouterr().err

    def test_trace_rejects_scenario_scale_flags(self, capsys, tmp_path):
        trace = tmp_path / "steady.jsonl"
        assert main([
            "serve", "steady", "--record", str(trace),
            "--duration-scale", "0.05",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--trace", str(trace), "--load-scale", "2.0",
        ]) == 2
        assert "deterministic" in capsys.readouterr().err

    def test_slo_ms_is_trace_only(self, capsys):
        assert main([
            "serve", "steady", "--slo-ms", "8", "--duration-scale", "0.05",
        ]) == 2
        assert "--slo-ms" in capsys.readouterr().err

    def test_replaying_a_non_trace_file_is_a_clean_error(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json\n")
        assert main(["serve", "--trace", str(bogus)]) == 2
        assert "not a request trace" in capsys.readouterr().err

    def test_smoke_runs_every_serving_spec(self, capsys, tmp_path):
        assert main(["serve", "--smoke", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for title_fragment in ("latency vs offered load", "batching policy",
                               "fleet scaling", "scenario SLO",
                               "heterogeneous CogSys"):
            assert title_fragment in out

    def test_heterogeneous_backend_override(self, capsys):
        assert main([
            "serve", "mixed_workload", "--duration-scale", "0.05",
            "--backend", "cogsys, cogsys", "--backend", " a100",
            "--router", "symbolic_affinity", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["provenance"]["num_chips"] == 3
        assert payload["provenance"]["backends"] == ["cogsys", "a100"]
        assert {row["backend"] for row in payload["per_backend"]} == {
            "cogsys", "a100",
        }

    def test_unknown_backend_is_a_clean_error(self, capsys):
        assert main(["serve", "steady", "--backend", "warp_drive"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_backend_flag_naming_nothing_is_a_clean_error(self, capsys):
        assert main(["serve", "steady", "--backend", " , "]) == 2
        assert "named no backends" in capsys.readouterr().err

    def test_backend_flag_rejected_with_smoke_and_list(self, capsys):
        assert main(["serve", "--smoke", "--backend", "a100"]) == 2
        assert "--backend only applies" in capsys.readouterr().err
        assert main(["serve", "--list", "--backend", "a100"]) == 2
        assert "--backend only applies" in capsys.readouterr().err

    def test_smoke_json_parses_as_one_document(self, capsys, tmp_path):
        assert main([
            "serve", "--smoke", "--cache-dir", str(tmp_path), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Every spec tagged "serving", incl. the DSE capacity planner.
        assert [entry["experiment"] for entry in payload] == [
            "serve_load", "serve_batch", "serve_fleet", "serve_scenarios",
            "serve_hetero", "serve_trace", "serve_chaos", "serve_control",
            "dse_capacity",
        ]


class TestBackends:
    def test_markdown_listing_is_sorted_and_complete(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("cogsys", "cogsys_no_nspe", "a100", "tpu_like", "xavier_nx"):
            assert f"| {name} |" in out
        assert "backends registered" in out
        names = [line.split("|")[1].strip() for line in out.splitlines()
                 if line.startswith("| ") and "---" not in line][1:]
        assert names == sorted(names)

    def test_json_listing(self, capsys):
        assert main(["backends", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["cogsys"]["symbolic_friendly"] is True
        assert by_name["a100"]["family"] == "device"
        assert by_name["tpu_like"]["family"] == "ml_accelerator"

    def test_describe_single_backend(self, capsys):
        assert main(["backends", "cogsys", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "cogsys"
        assert payload["schedulers"] == ["adaptive", "sequential"]
        assert payload["description"]

    def test_describe_markdown_joins_list_fields(self, capsys):
        assert main(["backends", "cogsys"]) == 0
        out = capsys.readouterr().out
        assert "| schedulers | adaptive,sequential |" in out
        assert "[" not in out

    def test_unknown_backend_is_a_clean_error(self, capsys):
        assert main(["backends", "warp_drive"]) == 2
        assert "unknown backend" in capsys.readouterr().err


class TestParamCoercion:
    @pytest.mark.parametrize(
        ("raw", "label", "expected"),
        [
            ("3", "int", 3),
            ("0.5", "float", 0.5),
            ("xeon", "str", "xeon"),
            ("1,2,3", "ints", (1, 2, 3)),
            ("0.2,0.8,1.1", "floats", (0.2, 0.8, 1.1)),
            ("raven,pgm", "strs", ("raven", "pgm")),
            ("210:1024,1:2048", "int_pairs", ((210, 1024), (1, 2048))),
        ],
    )
    def test_coercions(self, raw, label, expected):
        assert _coerce_param(raw, label) == expected


def test_python_dash_m_entry_point():
    """``python -m repro`` resolves to the CLI (console-script equivalent)."""
    repo_root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin",
             "HOME": "/tmp"},
    )
    assert result.returncode == 0
    assert "experiments registered" in result.stdout
