"""Tests for the end-to-end neurosymbolic solvers."""

import pytest

from repro.core import Precision
from repro.errors import TaskGenerationError
from repro.evaluation import CVRSolver, NeuroSymbolicSolver, SolverConfig, SVRTSolver
from repro.tasks import CVRGenerator, IRavenGenerator, RavenGenerator, SVRTGenerator


class TestSolverConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(TaskGenerationError):
            SolverConfig(vector_dim=2)
        with pytest.raises(TaskGenerationError):
            SolverConfig(query_noise=-1)


class TestNeuroSymbolicSolver:
    def test_pmf_mode_solves_clean_tasks(self):
        solver = NeuroSymbolicSolver(SolverConfig(perception_error=0.0))
        batch = RavenGenerator("center", seed=1).generate(8)
        assert solver.accuracy(batch) >= 0.85

    def test_vsa_mode_solves_clean_tasks(self):
        solver = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=0.0,
                use_vsa_factorization=True,
                stochasticity=0.05,
                vector_dim=512,
            )
        )
        batch = RavenGenerator("center", seed=2).generate(5)
        assert solver.accuracy(batch) >= 0.6

    def test_quantized_codebooks_still_work(self):
        solver = NeuroSymbolicSolver(
            SolverConfig(
                use_vsa_factorization=True,
                quantization=Precision.INT8,
                vector_dim=512,
            )
        )
        outcome = solver.solve_task(RavenGenerator("center", seed=3).generate_task())
        assert outcome.answer_index in range(8)

    def test_high_perception_noise_hurts_accuracy(self):
        batch = IRavenGenerator("center", seed=4).generate(8)
        clean = NeuroSymbolicSolver(SolverConfig(perception_error=0.0)).accuracy(batch)
        noisy = NeuroSymbolicSolver(SolverConfig(perception_error=0.45)).accuracy(batch)
        assert noisy <= clean

    def test_outcome_records_expected_index(self):
        task = RavenGenerator("center", seed=5).generate_task()
        outcome = NeuroSymbolicSolver(SolverConfig()).solve_task(task)
        assert outcome.expected_index == task.answer_index
        assert outcome.correct == (outcome.answer_index == outcome.expected_index)

    def test_empty_batch_rejected(self):
        with pytest.raises(TaskGenerationError):
            NeuroSymbolicSolver(SolverConfig()).accuracy([])


class TestCVRAndSVRTSolvers:
    def test_cvr_solver_accuracy(self):
        # Odd-one-out with free-varying distractor attributes is genuinely
        # ambiguous sometimes; well above the 25 % chance level is expected.
        tasks = CVRGenerator(seed=6).generate(40)
        assert CVRSolver(perception_error=0.02).accuracy(tasks) > 0.6

    def test_svrt_solver_accuracy(self):
        tasks = SVRTGenerator(seed=7).generate(40)
        assert SVRTSolver(perception_error=0.0).accuracy(tasks) > 0.9

    def test_empty_lists_rejected(self):
        with pytest.raises(TaskGenerationError):
            CVRSolver().accuracy([])
        with pytest.raises(TaskGenerationError):
            SVRTSolver().accuracy([])
