"""Tests for the perception simulator (the CNN front-end substitute)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.neural import PerceptionConfig, PerceptionSimulator
from repro.vsa import BipolarSpace, CodebookSet, SceneEncoder

DOMAINS = {
    "type": ["triangle", "square", "circle"],
    "size": ["small", "large"],
}


class TestPerceptionConfig:
    def test_invalid_error_rate_rejected(self):
        with pytest.raises(WorkloadError):
            PerceptionConfig(error_rate=1.0)

    def test_invalid_concentration_rejected(self):
        with pytest.raises(WorkloadError):
            PerceptionConfig(confusion_concentration=2.0)


class TestPerceptionSimulator:
    def test_zero_error_gives_delta_pmf(self):
        simulator = PerceptionSimulator(DOMAINS, PerceptionConfig(error_rate=0.0))
        pmf = simulator.perceive_attribute("type", "square")
        assert pmf.is_delta
        assert pmf.most_likely == "square"

    def test_error_rate_spreads_mass(self):
        simulator = PerceptionSimulator(DOMAINS, PerceptionConfig(error_rate=0.2))
        pmf = simulator.perceive_attribute("type", "square")
        assert pmf.probability_of("square") == pytest.approx(0.8, abs=1e-6)
        assert pmf.probabilities.sum() == pytest.approx(1.0)
        assert not pmf.is_delta

    def test_perceive_panel_covers_all_attributes(self):
        simulator = PerceptionSimulator(DOMAINS, PerceptionConfig(error_rate=0.1))
        pmfs = simulator.perceive_panel({"type": "circle", "size": "small"})
        assert set(pmfs) == {"type", "size"}

    def test_unknown_attribute_or_value_raises(self):
        simulator = PerceptionSimulator(DOMAINS)
        with pytest.raises(WorkloadError):
            simulator.perceive_attribute("colour", "red")
        with pytest.raises(WorkloadError):
            simulator.perceive_attribute("type", "hexagon")

    def test_sampled_misperception_rate_matches_error(self):
        simulator = PerceptionSimulator(
            DOMAINS, PerceptionConfig(error_rate=0.3, seed=0)
        )
        wrong = 0
        trials = 400
        for _ in range(trials):
            detected = simulator.sample_misperceived_panel({"type": "square", "size": "small"})
            wrong += detected["type"] != "square"
        assert 0.15 < wrong / trials < 0.45

    def test_query_vector_requires_encoder(self):
        simulator = PerceptionSimulator(DOMAINS)
        with pytest.raises(WorkloadError):
            simulator.query_vector({"type": "square", "size": "small"})

    def test_query_vector_close_to_clean_encoding(self):
        space = BipolarSpace(256, seed=0)
        codebooks = CodebookSet.from_factors(DOMAINS, space)
        encoder = SceneEncoder(codebooks)
        simulator = PerceptionSimulator(
            DOMAINS, PerceptionConfig(error_rate=0.0, seed=0), encoder=encoder
        )
        query = simulator.query_vector({"type": "square", "size": "small"}, noise_std=0.1)
        clean = encoder.encode_object({"type": "square", "size": "small"})
        assert space.similarity(query, clean) > 0.9

    def test_empty_domain_rejected(self):
        with pytest.raises(WorkloadError):
            PerceptionSimulator({"type": []})

    def test_single_value_domain_is_always_certain(self):
        simulator = PerceptionSimulator({"only": ["x"]}, PerceptionConfig(error_rate=0.5))
        assert simulator.perceive_attribute("only", "x").is_delta
