"""Tests for the sequential network container and backbone builder."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.neural import SequentialNetwork, build_perception_backbone
from repro.neural.layers import Linear, ReLU


class TestSequentialNetwork:
    def test_forward_runs_layers_in_order(self, rng):
        network = SequentialNetwork("mlp", [Linear("fc1", 8, 4, seed=0), ReLU("relu"), Linear("fc2", 4, 2, seed=1)])
        output = network.forward(rng.normal(size=8))
        assert output.shape == (2,)

    def test_stats_aggregate_layers(self):
        network = SequentialNetwork("mlp", [Linear("fc1", 8, 4, seed=0), Linear("fc2", 4, 2, seed=1)])
        stats = network.stats((8,))
        assert stats.total_flops == 2 * 8 * 4 + 2 * 4 * 2
        assert stats.total_params == (8 * 4 + 4) + (4 * 2 + 2)
        assert stats.output_shape == (2,)

    def test_empty_network_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SequentialNetwork("empty", [])

    def test_len_and_iteration(self):
        network = SequentialNetwork("mlp", [Linear("fc1", 4, 4, seed=0), ReLU("r")])
        assert len(network) == 2
        assert [layer.name for layer in network] == ["fc1", "r"]


class TestPerceptionBackbone:
    def test_backbone_produces_embedding(self, rng):
        backbone = build_perception_backbone(image_size=16, embedding_dim=32, width=4, num_blocks=2)
        output = backbone.forward(rng.normal(size=(1, 16, 16)))
        assert output.shape == (32,)

    def test_backbone_output_shape_matches_stats(self):
        backbone = build_perception_backbone(image_size=32, embedding_dim=64, width=8, num_blocks=3)
        assert backbone.output_shape((1, 32, 32)) == (64,)

    def test_deeper_backbone_has_more_flops(self):
        shallow = build_perception_backbone(image_size=32, num_blocks=2, width=8)
        deep = build_perception_backbone(image_size=32, num_blocks=3, width=8)
        assert deep.stats((1, 32, 32)).total_flops > shallow.stats((1, 32, 32)).total_flops

    def test_too_many_blocks_for_image_rejected(self):
        with pytest.raises(DimensionMismatchError):
            build_perception_backbone(image_size=8, num_blocks=5)

    def test_seeded_backbone_is_reproducible(self, rng):
        x = rng.normal(size=(1, 16, 16))
        a = build_perception_backbone(image_size=16, width=4, num_blocks=2, seed=3).forward(x)
        b = build_perception_backbone(image_size=16, width=4, num_blocks=2, seed=3).forward(x)
        np.testing.assert_allclose(a, b)
