"""Tests for the numpy neural layers and their cost accounting."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.neural import BatchNorm, Conv2d, Flatten, Linear, MaxPool2d, ReLU, Softmax


class TestConv2d:
    def test_output_shape_and_forward_agree(self, rng):
        conv = Conv2d("conv", in_channels=3, out_channels=8, kernel_size=3, padding=1, seed=0)
        activations = rng.normal(size=(3, 10, 10))
        output = conv.forward(activations)
        assert output.shape == conv.output_shape((3, 10, 10)) == (8, 10, 10)

    def test_stride_reduces_spatial_size(self):
        conv = Conv2d("conv", 1, 4, kernel_size=3, stride=2, padding=1, seed=0)
        assert conv.output_shape((1, 16, 16)) == (4, 8, 8)

    def test_matches_manual_convolution_on_tiny_example(self):
        conv = Conv2d("conv", 1, 1, kernel_size=2, seed=0)
        conv.weights = np.ones((1, 1, 2, 2))
        conv.bias = np.zeros(1)
        activations = np.arange(9, dtype=float).reshape(1, 3, 3)
        output = conv.forward(activations)
        # Each output is the sum of a 2x2 patch.
        expected = np.array([[[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]]])
        np.testing.assert_allclose(output, expected)

    def test_flops_formula(self):
        conv = Conv2d("conv", 2, 4, kernel_size=3, padding=1, seed=0)
        # m = 8*8 outputs, each needing 2*3*3 MACs per output channel.
        assert conv.flops((2, 8, 8)) == 2 * 4 * 8 * 8 * 2 * 3 * 3

    def test_wrong_channel_count_raises(self):
        conv = Conv2d("conv", 2, 4, kernel_size=3, seed=0)
        with pytest.raises(DimensionMismatchError):
            conv.output_shape((3, 8, 8))

    def test_invalid_configuration_raises(self):
        with pytest.raises(DimensionMismatchError):
            Conv2d("conv", 0, 4, kernel_size=3)

    def test_stats_record(self):
        conv = Conv2d("conv", 1, 2, kernel_size=3, padding=1, seed=0)
        stats = conv.stats((1, 8, 8))
        assert stats.kind == "conv"
        assert stats.params == conv.params()
        assert stats.arithmetic_intensity > 0


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear("fc", 6, 4, seed=0)
        x = rng.normal(size=6)
        np.testing.assert_allclose(layer.forward(x), layer.weights @ x + layer.bias)

    def test_accepts_multidimensional_input_by_flattening(self, rng):
        layer = Linear("fc", 12, 3, seed=0)
        assert layer.forward(rng.normal(size=(3, 2, 2))).shape == (3,)

    def test_wrong_size_raises(self):
        layer = Linear("fc", 6, 4, seed=0)
        with pytest.raises(DimensionMismatchError):
            layer.output_shape((5,))

    def test_flops_and_params(self):
        layer = Linear("fc", 10, 5, seed=0)
        assert layer.flops((10,)) == 2 * 10 * 5
        assert layer.params() == 10 * 5 + 5


class TestElementwiseLayers:
    def test_relu_clamps_negatives(self):
        relu = ReLU("relu")
        np.testing.assert_array_equal(relu.forward(np.array([-1.0, 0.5])), [0.0, 0.5])

    def test_batchnorm_identity_with_default_stats(self, rng):
        bn = BatchNorm("bn", channels=4)
        x = rng.normal(size=(4, 3, 3))
        np.testing.assert_allclose(bn.forward(x), x, atol=1e-3)

    def test_batchnorm_rejects_wrong_channels(self):
        bn = BatchNorm("bn", channels=4)
        with pytest.raises(DimensionMismatchError):
            bn.forward(np.zeros((3, 2, 2)))

    def test_maxpool_downsamples(self):
        pool = MaxPool2d("pool", pool_size=2)
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        output = pool.forward(x)
        assert output.shape == (1, 2, 2)
        assert output[0, 0, 0] == 5.0  # max of the top-left 2x2 block

    def test_softmax_normalises(self, rng):
        softmax = Softmax("softmax")
        output = softmax.forward(rng.normal(size=10))
        assert output.sum() == pytest.approx(1.0)
        assert np.all(output > 0)

    def test_flatten(self, rng):
        flat = Flatten("flatten")
        assert flat.forward(rng.normal(size=(2, 3, 4))).shape == (24,)
        assert flat.flops((2, 3, 4)) == 0
