"""Tests for the Section-III characterization utilities."""

import pytest

from repro.backends import get_backend
from repro.profiling import (
    KERNEL_PROFILE,
    memory_footprint,
    roofline_points,
    runtime_breakdown,
    symbolic_operation_breakdown,
    task_size_scaling,
)
from repro.workloads import build_nvsa_workload, build_workload
from repro.workloads.nvsa import build_nvsa_workload as nvsa_builder


@pytest.fixture(scope="module")
def nvsa():
    return build_workload("nvsa")


@pytest.fixture(scope="module")
def gpu():
    return get_backend("rtx2080ti")


class TestRuntimeBreakdown:
    def test_fractions_sum_to_one(self, nvsa, gpu):
        breakdown = runtime_breakdown(nvsa, gpu)
        assert breakdown.neural_fraction + breakdown.symbolic_fraction == pytest.approx(1.0)
        assert breakdown.symbolic_fraction > 0.5

    def test_task_size_scaling_grows_runtime(self, gpu):
        breakdowns = task_size_scaling(nvsa_builder, gpu, grid_sizes=(2, 3))
        assert breakdowns[1].total_seconds > breakdowns[0].total_seconds

    def test_legacy_bare_device_model_still_accepted(self, nvsa, gpu):
        # Pre-backend-layer call shape: a DeviceModel instead of a Backend.
        legacy = runtime_breakdown(nvsa, gpu.model)
        wrapped = runtime_breakdown(nvsa, gpu)
        assert legacy == wrapped
        assert symbolic_operation_breakdown(nvsa, gpu.model) == (
            symbolic_operation_breakdown(nvsa, gpu)
        )


class TestMemoryFootprint:
    def test_footprint_fields(self, nvsa):
        footprint = memory_footprint(nvsa)
        assert footprint.total_bytes == nvsa.weight_bytes + nvsa.codebook_bytes
        assert 0 <= footprint.codebook_fraction <= 1
        assert footprint.total_megabytes > 1


class TestRoofline:
    def test_symbolic_stage_is_memory_bound_on_gpu(self, nvsa, gpu):
        points = roofline_points(nvsa, gpu)
        assert points["symbolic"].memory_bound
        assert points["neural"].arithmetic_intensity > points["symbolic"].arithmetic_intensity

    def test_accepts_bare_generic_device_and_rejects_cycle_models(self, nvsa, gpu):
        from repro.backends import get_backend
        from repro.errors import BackendError

        wrapped = roofline_points(nvsa, gpu)
        bare = roofline_points(nvsa, gpu.model)  # legacy call shape
        assert bare["symbolic"].arithmetic_intensity == wrapped[
            "symbolic"
        ].arithmetic_intensity
        with pytest.raises(BackendError, match="roofline"):
            roofline_points(nvsa, get_backend("cogsys"))


class TestSymbolicBreakdown:
    def test_shares_sum_to_one_and_circconv_dominates(self, nvsa, gpu):
        shares = symbolic_operation_breakdown(nvsa, gpu)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["circconv"] + shares["matvec"] > 0.5


class TestKernelProfile:
    def test_published_table_structure(self):
        assert len(KERNEL_PROFILE) == 4
        for metrics in KERNEL_PROFILE.values():
            assert set(metrics) >= {"compute_throughput", "dram_bw_utilization"}
