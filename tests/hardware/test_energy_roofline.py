"""Tests for the area/power model and the roofline utilities."""

import pytest

from repro.core import Precision
from repro.errors import HardwareConfigError
from repro.hardware import AreaPowerModel, Roofline
from repro.hardware.energy import PE_DESIGN_CHOICES, PRECISION_SILICON


class TestAreaPowerModel:
    def test_reference_configuration_matches_published_numbers(self):
        model = AreaPowerModel(Precision.INT8)
        assert model.array_area_mm2() == pytest.approx(3.8)
        assert model.simd_area_mm2() == pytest.approx(0.21)
        assert model.accelerator_area_mm2() == pytest.approx(4.01, abs=0.05)
        assert model.accelerator_power_w() == pytest.approx(1.48, abs=0.02)

    def test_precision_ordering_of_area_and_power(self):
        fp32 = AreaPowerModel(Precision.FP32)
        fp8 = AreaPowerModel(Precision.FP8)
        int8 = AreaPowerModel(Precision.INT8)
        assert fp32.accelerator_area_mm2() > fp8.accelerator_area_mm2() > int8.accelerator_area_mm2()
        assert fp32.accelerator_power_w() > fp8.accelerator_power_w()

    def test_fp8_reconfigurability_overhead_below_five_percent(self):
        assert AreaPowerModel(Precision.FP8).reconfigurability_overhead < 0.05
        assert AreaPowerModel(Precision.INT8).reconfigurability_overhead > 0.05

    def test_area_scales_linearly_with_pes(self):
        model = AreaPowerModel(Precision.FP8)
        assert model.array_area_mm2(8192) == pytest.approx(model.array_area_mm2(16384) / 2)

    def test_energy_accounting(self):
        model = AreaPowerModel(Precision.INT8)
        assert model.energy_joules(2.0) == pytest.approx(2.0 * model.accelerator_power_w())
        with pytest.raises(HardwareConfigError):
            model.energy_joules(-1.0)

    def test_invalid_pe_counts_rejected(self):
        with pytest.raises(HardwareConfigError):
            AreaPowerModel(Precision.FP8).array_area_mm2(0)

    def test_published_tables_are_complete(self):
        assert set(PRECISION_SILICON) == {Precision.FP32, Precision.FP8, Precision.INT8}
        assert set(PE_DESIGN_CHOICES) == {
            "reconfigurable_16x32x32",
            "heterogeneous_16+16",
            "heterogeneous_8+8",
        }


class TestRoofline:
    def test_attainable_performance_saturates_at_peak(self):
        roofline = Roofline("gpu", peak_flops=10e12, memory_bandwidth_bytes_per_s=500e9)
        assert roofline.attainable_flops(1000) == 10e12
        assert roofline.attainable_flops(1) == 500e9

    def test_ridge_point(self):
        roofline = Roofline("gpu", peak_flops=10e12, memory_bandwidth_bytes_per_s=500e9)
        assert roofline.ridge_point == pytest.approx(20.0)

    def test_place_classifies_bound(self):
        roofline = Roofline("gpu", peak_flops=10e12, memory_bandwidth_bytes_per_s=500e9)
        memory_bound = roofline.place("symbolic", flops=10**9, traffic_bytes=10**9)
        compute_bound = roofline.place("neural", flops=10**12, traffic_bytes=10**9)
        assert memory_bound.memory_bound and memory_bound.bound == "memory"
        assert not compute_bound.memory_bound and compute_bound.bound == "compute"

    def test_time_lower_bound(self):
        roofline = Roofline("gpu", peak_flops=1e12, memory_bandwidth_bytes_per_s=1e11)
        assert roofline.time_seconds(flops=1e12, traffic_bytes=0) == pytest.approx(1.0)
        assert roofline.time_seconds(flops=0, traffic_bytes=1e11) == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(HardwareConfigError):
            Roofline("bad", peak_flops=0, memory_bandwidth_bytes_per_s=1)
        roofline = Roofline("gpu", peak_flops=1e12, memory_bandwidth_bytes_per_s=1e11)
        with pytest.raises(HardwareConfigError):
            roofline.attainable_flops(-1)
