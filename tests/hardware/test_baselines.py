"""Tests for the baseline device models."""

import pytest

from repro.errors import HardwareConfigError
from repro.hardware import DEVICE_SPECS, GenericDevice, SystolicAcceleratorDevice, make_device
from repro.hardware.baselines import ACCELERATOR_SPECS
from repro.workloads import Stage, build_nvsa_workload
from repro.workloads.builders import circconv_kernel, gemm_kernel


class TestMakeDevice:
    def test_all_registered_devices_instantiate(self):
        for name in list(DEVICE_SPECS) + list(ACCELERATOR_SPECS):
            device = make_device(name)
            assert device.name == name
            assert device.power_watts > 0

    def test_unknown_device_rejected(self):
        with pytest.raises(HardwareConfigError):
            make_device("tpu_v5")


class TestGenericDevice:
    def test_neural_kernels_run_near_roofline(self):
        device = make_device("rtx2080ti")
        kernel = gemm_kernel("g", m=1024, k=1024, n=1024)
        seconds = device.kernel_time(kernel)
        ideal = kernel.flops / DEVICE_SPECS["rtx2080ti"].peak_flops
        assert ideal <= seconds < 20 * ideal

    def test_circconv_pays_quadratic_traffic(self):
        device = make_device("rtx2080ti")
        assert isinstance(device, GenericDevice)
        kernel = circconv_kernel("cc", vector_dim=1024, count=64, launches=4)
        traffic = device._device_traffic_bytes(kernel)
        assert traffic > 64 * 1024 * 1024  # far beyond the 3d streaming bytes

    def test_symbolic_kernels_pay_host_transfer_and_launches(self):
        device = make_device("jetson_tx2")
        fused = circconv_kernel("cc", vector_dim=512, count=64, launches=1)
        unfused = circconv_kernel("cc2", vector_dim=512, count=64, launches=64)
        assert device.kernel_time(unfused) > device.kernel_time(fused)

    def test_edge_devices_slower_than_desktop_gpu(self):
        workload = build_nvsa_workload()
        gpu = make_device("rtx2080ti").workload_time(workload)
        tx2 = make_device("jetson_tx2").workload_time(workload)
        nx = make_device("xavier_nx").workload_time(workload)
        assert tx2.total_seconds > nx.total_seconds > gpu.total_seconds

    def test_symbolic_stage_dominates_gpu_runtime_for_nvsa(self):
        report = make_device("rtx2080ti").workload_time(build_nvsa_workload())
        assert report.symbolic_fraction > 0.5
        assert report.total_seconds == pytest.approx(
            report.neural_seconds + report.symbolic_seconds
        )

    def test_energy_uses_device_power(self):
        report = make_device("xeon").workload_time(build_nvsa_workload())
        assert report.energy_joules == pytest.approx(report.total_seconds * 145.0)


class TestSystolicAcceleratorDevice:
    def test_monolithic_array_is_worst_for_symbolic_kernels(self):
        kernel = circconv_kernel("cc", vector_dim=1024, count=128)
        tpu = make_device("tpu_like").kernel_time(kernel)
        mtia = make_device("mtia_like").kernel_time(kernel)
        assert tpu > mtia

    def test_neural_gemm_times_are_comparable_across_accelerators(self):
        kernel = gemm_kernel("g", m=4096, k=512, n=512)
        times = [
            make_device(name).kernel_time(kernel)
            for name in ("tpu_like", "mtia_like", "gemmini_like")
        ]
        assert max(times) < 6 * min(times)

    def test_report_breakdown_by_stage(self):
        report = make_device("tpu_like").workload_time(build_nvsa_workload())
        assert report.neural_seconds > 0 and report.symbolic_seconds > 0
        assert set(report.kernel_seconds) == {
            kernel.name for kernel in build_nvsa_workload()
        }

    def test_spec_registry_matches_paper_table(self):
        assert ACCELERATOR_SPECS["tpu_like"].cell_rows == 128
        assert ACCELERATOR_SPECS["mtia_like"].num_cells == 16
        assert ACCELERATOR_SPECS["gemmini_like"].num_cells == 64
        assert isinstance(make_device("gemmini_like"), SystolicAcceleratorDevice)
