"""Tests for the nsPE, SIMD unit, memory system, scaling and config."""

import pytest

from repro.core import Precision
from repro.errors import HardwareConfigError, MappingError
from repro.hardware import ArrayOrganization, CogSysConfig, MemorySystem, PEMode, ReconfigurablePE, SIMDUnit
from repro.hardware.scaling import OrganizationMode, choose_organization, gemm_cycles_scaled


class TestCogSysConfig:
    def test_default_matches_paper_configuration(self):
        config = CogSysConfig()
        assert config.total_pes == 16 * 32 * 32
        assert config.total_sram_bytes == pytest.approx(4.5 * 1024 * 1024, rel=0.05)
        assert config.scale_up_columns == 32
        assert config.scale_up_column_depth == 512
        assert config.precision is Precision.INT8

    def test_cycles_to_seconds(self):
        config = CogSysConfig()
        assert config.cycles_to_seconds(0.8e9) == pytest.approx(1.0)
        with pytest.raises(HardwareConfigError):
            config.cycles_to_seconds(-1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(HardwareConfigError):
            CogSysConfig(num_cells=0)
        with pytest.raises(HardwareConfigError):
            CogSysConfig(frequency_hz=0)


class TestReconfigurablePE:
    def test_load_mode_fills_stationary_register(self):
        pe = ReconfigurablePE(mode=PEMode.LOAD)
        pe.step(top_in_a=3.0)
        assert pe.stationary == 3.0

    def test_gemm_mode_macs(self):
        pe = ReconfigurablePE(mode=PEMode.GEMM, stationary=2.0)
        outputs = pe.step(left_in=4.0, sum_in=1.0)
        assert outputs["sum_out"] == 9.0
        assert pe.mac_count == 1

    def test_circconv_mode_bubbles_the_stream(self):
        pe = ReconfigurablePE(mode=PEMode.CIRCCONV, stationary=1.0)
        # Cycle 1: element enters the passing register only.
        pe.step(top_in_b=5.0)
        assert pe.passing == 5.0 and pe.streaming == 0.0
        # Cycle 2: it moves into the streaming register (one-cycle bubble).
        pe.step(top_in_b=7.0)
        assert pe.streaming == 5.0 and pe.passing == 7.0

    def test_invalid_mode_rejected(self):
        pe = ReconfigurablePE()
        with pytest.raises(HardwareConfigError):
            pe.set_mode("turbo")

    def test_reset_clears_state(self):
        pe = ReconfigurablePE(mode=PEMode.GEMM, stationary=2.0)
        pe.step(left_in=1.0)
        pe.reset()
        assert pe.partial_sum == 0.0 and pe.mac_count == 0


class TestSIMDUnit:
    def test_elementwise_cycles_scale_with_elements(self):
        simd = SIMDUnit(num_pes=512)
        assert simd.elementwise_cycles(512) < simd.elementwise_cycles(51200)
        assert simd.elementwise_cycles(0) == 0

    def test_transcendental_ops_cost_more(self):
        simd = SIMDUnit()
        assert simd.elementwise_cycles(1024, transcendental=True) > simd.elementwise_cycles(1024)

    def test_reduction_cycles(self):
        simd = SIMDUnit()
        assert simd.reduction_cycles(4096) > simd.reduction_cycles(1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(HardwareConfigError):
            SIMDUnit(num_pes=0)
        with pytest.raises(HardwareConfigError):
            SIMDUnit().elementwise_cycles(-1)


class TestMemorySystem:
    def _memory(self):
        return MemorySystem(
            sram_a_bytes=256 * 1024,
            sram_b_bytes=4 * 1024 * 1024,
            sram_c_bytes=256 * 1024,
            dram_bandwidth_bytes_per_s=700e9,
        )

    def test_transfer_time_and_on_chip_fit(self):
        memory = self._memory()
        transfer = memory.transfer(bytes_read=1_000_000, bytes_written=500_000)
        assert transfer.dram_bytes == 1_500_000
        assert transfer.transfer_seconds == pytest.approx(1_500_000 / 700e9)
        assert transfer.fits_on_chip

    def test_resident_bytes_reduce_traffic(self):
        memory = self._memory()
        transfer = memory.transfer(bytes_read=1_000_000, bytes_written=0, resident_bytes=600_000)
        assert transfer.dram_bytes == 400_000

    def test_overlap_takes_the_maximum(self):
        memory = self._memory()
        transfer = memory.transfer(bytes_read=7_000_000, bytes_written=0)
        assert memory.overlapped_seconds(1e-6, transfer) == pytest.approx(1e-5)
        assert memory.overlapped_seconds(1e-3, transfer) == pytest.approx(1e-3)

    def test_invalid_inputs_rejected(self):
        memory = self._memory()
        with pytest.raises(HardwareConfigError):
            memory.transfer(-1, 0)
        with pytest.raises(HardwareConfigError):
            MemorySystem(1, 1, 1, dram_bandwidth_bytes_per_s=0)


class TestScaling:
    def test_scale_out_wins_for_small_weight_matrices(self):
        organization, cycles = choose_organization(16, 32, 32, m=4096, k=64, n=32)
        assert organization.mode is OrganizationMode.SCALE_OUT
        assert cycles > 0

    def test_logical_dimensions(self):
        scale_up = ArrayOrganization(OrganizationMode.SCALE_UP, 16, 32, 32)
        scale_out = ArrayOrganization(OrganizationMode.SCALE_OUT, 16, 32, 32)
        assert scale_up.logical_rows == 512 and scale_up.logical_arrays == 1
        assert scale_out.logical_rows == 32 and scale_out.logical_arrays == 16
        assert scale_up.total_pes == scale_out.total_pes == 16384

    def test_gemm_cycles_scaled_validates_input(self):
        organization = ArrayOrganization(OrganizationMode.SCALE_OUT, 4, 8, 8)
        with pytest.raises(MappingError):
            gemm_cycles_scaled(organization, 0, 8, 8)
