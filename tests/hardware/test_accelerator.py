"""Tests for the CogSys accelerator model."""

import pytest

from repro.core import Precision
from repro.errors import HardwareConfigError
from repro.hardware import CogSysAccelerator, CogSysConfig
from repro.hardware.mapping import MappingMode
from repro.workloads import Stage, build_mimonet_workload, build_nvsa_workload
from repro.workloads.builders import circconv_kernel, elementwise_kernel, gemm_kernel


@pytest.fixture(scope="module")
def accelerator():
    return CogSysAccelerator()


@pytest.fixture(scope="module")
def nvsa_workload():
    return build_nvsa_workload()


class TestSpecification:
    def test_area_and_power_match_fig14(self, accelerator):
        assert accelerator.area_mm2() == pytest.approx(4.0, abs=0.1)
        assert accelerator.power_watts == pytest.approx(1.48, abs=0.02)

    def test_fp8_configuration_keeps_area_overhead_below_5_percent(self):
        fp8 = CogSysAccelerator(CogSysConfig(precision=Precision.FP8))
        assert fp8.area_power.reconfigurability_overhead < 0.05


class TestKernelCycles:
    def test_circconv_uses_bubble_streaming(self, accelerator):
        kernel = circconv_kernel("cc", vector_dim=1024, count=210)
        cycles = accelerator.kernel_cycles(kernel)
        decision = accelerator.circconv_mapping(1024, 210)
        assert cycles >= decision.cycles
        assert decision.mode is MappingMode.TEMPORAL

    def test_without_nspe_mode_circconv_is_much_slower(self, accelerator):
        ablated = CogSysAccelerator(reconfigurable_symbolic=False)
        kernel = circconv_kernel("cc", vector_dim=1024, count=210)
        assert ablated.kernel_cycles(kernel) > 3 * accelerator.kernel_cycles(kernel)

    def test_gemm_scales_with_allocated_cells(self, accelerator):
        kernel = gemm_kernel("g", m=4096, k=512, n=512)
        assert accelerator.kernel_cycles(kernel, num_cells=16) < accelerator.kernel_cycles(
            kernel, num_cells=4
        )

    def test_elementwise_runs_on_simd(self, accelerator):
        kernel = elementwise_kernel("e", elements=100_000, ops_per_element=2)
        cycles = accelerator.kernel_cycles(kernel)
        assert cycles < 10_000 + accelerator.config.dispatch_overhead_cycles + 100_000

    def test_scale_out_choice_for_low_dimensional_bindings(self, accelerator):
        # MIMONet-style d=64 bindings benefit from the scale-out organisation.
        restricted = accelerator.circconv_mapping(64, 1000, allow_scale_out=False)
        flexible = accelerator.circconv_mapping(64, 1000, allow_scale_out=True)
        assert flexible.cycles <= restricted.cycles

    def test_invalid_cell_count_rejected(self, accelerator):
        kernel = gemm_kernel("g", m=16, k=16, n=16)
        with pytest.raises(HardwareConfigError):
            accelerator.kernel_cycles(kernel, num_cells=0)


class TestSimulation:
    def test_simulate_reports_consistent_totals(self, accelerator, nvsa_workload):
        report = accelerator.simulate(nvsa_workload, scheduler="sequential")
        assert report.total_seconds == pytest.approx(
            report.total_cycles / accelerator.config.frequency_hz
        )
        assert report.energy_joules == pytest.approx(
            report.total_seconds * accelerator.power_watts
        )
        assert set(report.kernel_seconds) == {k.name for k in nvsa_workload}
        assert 0 < report.array_occupancy <= 1

    def test_adaptive_never_slower_than_sequential(self, accelerator):
        workload = build_nvsa_workload(num_tasks=3)
        sequential = accelerator.simulate(workload, "sequential")
        adaptive = accelerator.simulate(workload, "adaptive")
        assert adaptive.total_seconds <= sequential.total_seconds

    def test_symbolic_share_is_small_on_cogsys(self, accelerator, nvsa_workload):
        report = accelerator.simulate(nvsa_workload, "sequential")
        assert report.symbolic_fraction < 0.5

    def test_real_time_reasoning(self, accelerator, nvsa_workload):
        report = accelerator.simulate(nvsa_workload, "adaptive")
        assert report.total_seconds < 0.3

    def test_mimonet_runs_and_is_neural_dominated(self, accelerator):
        report = accelerator.simulate(build_mimonet_workload(), "adaptive")
        assert report.neural_seconds > report.symbolic_seconds

    def test_unknown_scheduler_rejected(self, accelerator, nvsa_workload):
        with pytest.raises(HardwareConfigError):
            accelerator.simulate(nvsa_workload, scheduler="random")
