"""Tests for the systolic GEMM model and the spatial/temporal mapping."""

import pytest

from repro.errors import MappingError
from repro.hardware import SystolicArrayModel, choose_mapping
from repro.hardware.mapping import MappingMode, spatial_mapping, temporal_mapping


class TestSystolicArrayModel:
    def test_gemm_cycles_scale_with_tiles(self):
        array = SystolicArrayModel(32, 32)
        small = array.gemm_cycles(m=64, k=32, n=32)
        large = array.gemm_cycles(m=64, k=128, n=128)
        assert large.cycles > small.cycles
        assert 0 < small.utilization <= 1

    def test_weight_loading_dominates_gemv_shapes(self):
        array = SystolicArrayModel(32, 32)
        gemv = array.gemm_cycles(m=1, k=1024, n=1024)
        # 1024 tiles, each paying the 32-cycle weight load.
        assert gemv.cycles >= 1024 * 32

    def test_double_buffering_helps(self):
        buffered = SystolicArrayModel(32, 32, double_buffered=True)
        unbuffered = SystolicArrayModel(32, 32, double_buffered=False)
        assert (
            buffered.gemm_cycles(64, 64, 64).cycles
            < unbuffered.gemm_cycles(64, 64, 64).cycles
        )

    def test_circconv_gemv_is_sequential_in_count(self):
        array = SystolicArrayModel(32, 32)
        one = array.circconv_cycles_gemv(256, 1).cycles
        four = array.circconv_cycles_gemv(256, 4).cycles
        assert four == 4 * one

    def test_circconv_gemv_footprint_is_quadratic(self):
        array = SystolicArrayModel(32, 32)
        assert array.circconv_gemv_bytes(1024) == (1024 * 1024 + 2048) * 4

    def test_multi_cell_gemm_scales_with_cells(self):
        array = SystolicArrayModel(32, 32)
        one_cell = array.multi_cell_gemm_cycles(1, m=256, k=256, n=256)
        four_cells = array.multi_cell_gemm_cycles(4, m=256, k=256, n=256)
        assert four_cells < one_cell
        # Few-tile, tall-activation GEMMs also benefit (rows are split).
        tall_one = array.multi_cell_gemm_cycles(1, m=4096, k=16, n=16)
        tall_four = array.multi_cell_gemm_cycles(4, m=4096, k=16, n=16)
        assert tall_four < tall_one

    def test_invalid_dimensions_rejected(self):
        array = SystolicArrayModel(8, 8)
        with pytest.raises(MappingError):
            array.gemm_cycles(0, 1, 1)
        with pytest.raises(MappingError):
            array.circconv_cycles_gemv(0)


class TestSTMapping:
    def test_formulas_match_paper(self):
        # Latency: spatial = k*ceil(d/(N*M))*T, temporal = ceil(k/N)*ceil(d/M)*T.
        spatial = spatial_mapping(num_arrays=32, array_length=512, num_convs=210, vector_dim=1024)
        temporal = temporal_mapping(num_arrays=32, array_length=512, num_convs=210, vector_dim=1024)
        pass_cycles = 3 * 512 + 1024 - 1
        assert spatial.cycles == 210 * 1 * pass_cycles
        assert temporal.cycles == 7 * 2 * pass_cycles
        # Memory reads per pass: 2d vs (d + M) * N.
        assert spatial.memory_reads_per_pass == 2 * 1024
        assert temporal.memory_reads_per_pass == (1024 + 512) * 32

    def test_adaptive_choice_temporal_for_many_convs(self):
        decision = choose_mapping(32, 512, num_convs=210, vector_dim=1024)
        assert decision.mode is MappingMode.TEMPORAL

    def test_adaptive_choice_spatial_for_single_large_conv(self):
        decision = choose_mapping(32, 512, num_convs=1, vector_dim=2048)
        assert decision.mode is MappingMode.SPATIAL

    def test_bandwidth_per_cycle_is_positive(self):
        decision = choose_mapping(32, 512, num_convs=64, vector_dim=1024)
        assert decision.bandwidth_words_per_cycle > 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(MappingError):
            choose_mapping(0, 512, 1, 1024)
        with pytest.raises(MappingError):
            spatial_mapping(32, 512, 0, 1024)
