"""Tests for the bubble-streaming dataflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareConfigError, MappingError
from repro.hardware import BubbleStreamSimulator, bs_latency_cycles
from repro.vsa.operations import circular_convolve


class TestLatencyFormula:
    def test_matched_array_is_4d_minus_1(self):
        assert bs_latency_cycles(1024) == 4 * 1024 - 1
        assert bs_latency_cycles(3) == 11

    def test_general_formula(self):
        assert bs_latency_cycles(1024, 512) == 3 * 512 + 1024 - 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(MappingError):
            bs_latency_cycles(0)
        with pytest.raises(MappingError):
            bs_latency_cycles(8, 0)


class TestCompletionMatchesClosedForm:
    """The simulated schedule must land exactly on the analytical latency."""

    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 5, 8, 12, 16, 32, 64])
    def test_last_completion_is_the_closed_form_latency(self, rng, dim):
        # Completion cycles are 0-indexed: the last output completes at the
        # end of cycle index ``4d - 2``, i.e. after exactly ``4d - 1`` cycles
        # — the closed form.  An exact match (not just <=) pins the schedule
        # to the formula for every dimension.
        result = BubbleStreamSimulator(dim).run(*rng.normal(size=(2, dim)))
        last_completion = max(result.output_completion_cycles)
        assert last_completion + 1 == bs_latency_cycles(dim)
        assert result.cycles == bs_latency_cycles(dim)

    @pytest.mark.parametrize(
        ("vector_dim", "array_length"),
        [(1024, 512), (1024, 256), (512, 1024), (2048, 32), (7, 3), (3, 7)],
    )
    def test_mismatched_array_uses_the_3m_plus_d_branch(self, vector_dim, array_length):
        # When the array length M differs from the vector dimension d the
        # latency is 3M + d - 1 per fold (load M, stream d to the last PE,
        # drain), not the matched-array 4d - 1 closed form.
        mismatched = bs_latency_cycles(vector_dim, array_length)
        assert mismatched == 3 * array_length + vector_dim - 1
        # Independent cross-checks of the branch (not a formula restatement):
        # relative to a matched array of M PEs, streaming d instead of M
        # elements costs exactly d - M extra cycles...
        assert mismatched - bs_latency_cycles(array_length) == (
            vector_dim - array_length
        )
        # ...and each extra PE adds exactly 3 cycles (deeper load, one more
        # 2-cycle bubble hop, one more partial-sum hop) at fixed d.
        assert (
            bs_latency_cycles(vector_dim, array_length + 1) - mismatched == 3
        )

    @pytest.mark.parametrize("dim", [1, 4, 33, 1000])
    def test_explicit_matched_length_equals_default(self, dim):
        assert bs_latency_cycles(dim, dim) == bs_latency_cycles(dim) == 4 * dim - 1


class TestBubbleStreamSimulator:
    def test_output_matches_fft_reference(self, rng):
        dim = 32
        simulator = BubbleStreamSimulator(dim)
        a, b = rng.normal(size=(2, dim))
        result = simulator.run(a, b)
        np.testing.assert_allclose(result.output, circular_convolve(a, b), atol=1e-9)

    def test_cycles_match_closed_form(self, rng):
        dim = 16
        result = BubbleStreamSimulator(dim).run(*rng.normal(size=(2, dim)))
        assert result.cycles == bs_latency_cycles(dim)
        assert max(result.output_completion_cycles) <= result.cycles

    def test_every_pe_performs_d_macs(self, rng):
        dim = 12
        result = BubbleStreamSimulator(dim).run(*rng.normal(size=(2, dim)))
        assert result.mac_count == dim * dim
        assert result.macs_per_cycle > 0

    def test_dimension_mismatch_rejected(self, rng):
        simulator = BubbleStreamSimulator(8)
        with pytest.raises(MappingError):
            simulator.run(rng.normal(size=8), rng.normal(size=4))
        with pytest.raises(MappingError):
            simulator.run(rng.normal(size=16), rng.normal(size=16))

    def test_invalid_array_length_rejected(self):
        with pytest.raises(HardwareConfigError):
            BubbleStreamSimulator(0)

    def test_run_batch(self, rng):
        simulator = BubbleStreamSimulator(8)
        pairs = [tuple(rng.normal(size=(2, 8))) for _ in range(3)]
        results = simulator.run_batch(pairs)
        assert len(results) == 3

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.sampled_from([4, 8, 16, 32]))
    def test_property_functional_correctness(self, seed, dim):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(2, dim))
        result = BubbleStreamSimulator(dim).run(a, b)
        np.testing.assert_allclose(result.output, circular_convolve(a, b), atol=1e-8)
        assert result.cycles == 4 * dim - 1
