"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.vsa import BipolarSpace, CodebookSet, HRRSpace, SceneEncoder


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_factors():
    """A small factor grammar used across VSA/core tests."""
    return {
        "type": ["triangle", "square", "pentagon", "hexagon", "circle"],
        "size": ["small", "medium", "large"],
        "color": ["white", "grey", "black", "red"],
    }


@pytest.fixture
def bipolar_space():
    """A seeded bipolar space of moderate dimension."""
    return BipolarSpace(512, seed=7)


@pytest.fixture
def hrr_space():
    """A seeded HRR space of moderate dimension."""
    return HRRSpace(512, seed=7)


@pytest.fixture
def bipolar_codebooks(small_factors, bipolar_space):
    """Codebooks over the small factor grammar in the bipolar space."""
    return CodebookSet.from_factors(small_factors, bipolar_space)


@pytest.fixture
def hrr_codebooks(small_factors, hrr_space):
    """Codebooks over the small factor grammar in the HRR space."""
    return CodebookSet.from_factors(small_factors, hrr_space)


@pytest.fixture
def bipolar_encoder(bipolar_codebooks):
    """Scene encoder over the bipolar codebooks."""
    return SceneEncoder(bipolar_codebooks)


@pytest.fixture
def hrr_encoder(hrr_codebooks):
    """Scene encoder over the HRR codebooks."""
    return SceneEncoder(hrr_codebooks)
