"""Unit and property tests for the elementary VSA operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DimensionMismatchError
from repro.vsa import operations as ops


def _finite_vectors(dim):
    return arrays(
        dtype=np.float64,
        shape=dim,
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    )


class TestCircularConvolve:
    def test_matches_direct_definition(self, rng):
        a = rng.normal(size=16)
        b = rng.normal(size=16)
        np.testing.assert_allclose(
            ops.circular_convolve(a, b), ops.circular_convolve_direct(a, b), atol=1e-9
        )

    def test_known_small_example(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([4.0, 5.0, 6.0])
        # c[0] = 1*4 + 2*6 + 3*5 = 31, c[1] = 1*5 + 2*4 + 3*6 = 31,
        # c[2] = 1*6 + 2*5 + 3*4 = 28
        np.testing.assert_allclose(ops.circular_convolve(a, b), [31, 31, 28], atol=1e-9)

    def test_commutative(self, rng):
        a = rng.normal(size=32)
        b = rng.normal(size=32)
        np.testing.assert_allclose(
            ops.circular_convolve(a, b), ops.circular_convolve(b, a), atol=1e-9
        )

    def test_associative(self, rng):
        a, b, c = rng.normal(size=(3, 32))
        left = ops.circular_convolve(ops.circular_convolve(a, b), c)
        right = ops.circular_convolve(a, ops.circular_convolve(b, c))
        np.testing.assert_allclose(left, right, atol=1e-8)

    def test_identity_element(self, rng):
        a = rng.normal(size=16)
        identity = np.zeros(16)
        identity[0] = 1.0
        np.testing.assert_allclose(ops.circular_convolve(a, identity), a, atol=1e-9)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            ops.circular_convolve(np.ones(4), np.ones(5))

    def test_rejects_matrix_input(self):
        with pytest.raises(DimensionMismatchError):
            ops.circular_convolve(np.ones((2, 4)), np.ones(4))

    @settings(max_examples=25, deadline=None)
    @given(a=_finite_vectors(16), b=_finite_vectors(16))
    def test_property_commutativity(self, a, b):
        np.testing.assert_allclose(
            ops.circular_convolve(a, b), ops.circular_convolve(b, a), atol=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(a=_finite_vectors(16), b=_finite_vectors(16), c=_finite_vectors(16))
    def test_property_distributes_over_addition(self, a, b, c):
        left = ops.circular_convolve(a, b + c)
        right = ops.circular_convolve(a, b) + ops.circular_convolve(a, c)
        np.testing.assert_allclose(left, right, atol=1e-6)


class TestCircularCorrelate:
    def test_inverts_convolution_for_unitary_vectors(self, rng):
        a = ops.random_unitary(64, rng=rng)
        b = ops.random_unitary(64, rng=rng)
        bound = ops.circular_convolve(a, b)
        recovered = ops.circular_correlate(bound, a)
        assert ops.cosine_similarity(recovered, b) > 0.99

    def test_matches_direct_definition(self, rng):
        c = rng.normal(size=12)
        a = rng.normal(size=12)
        np.testing.assert_allclose(
            ops.circular_correlate(c, a), ops.circular_correlate_direct(c, a), atol=1e-9
        )

    def test_random_vectors_unbind_approximately(self, rng):
        a = rng.normal(size=2048)
        b = rng.normal(size=2048)
        bound = ops.circular_convolve(a, b)
        recovered = ops.circular_correlate(bound, a)
        assert ops.cosine_similarity(recovered, b) > 0.6

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            ops.circular_correlate(np.ones(8), np.ones(4))


class TestSimilarity:
    def test_cosine_of_identical_vectors_is_one(self, rng):
        v = rng.normal(size=50)
        assert ops.cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_of_opposite_vectors_is_minus_one(self, rng):
        v = rng.normal(size=50)
        assert ops.cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_cosine_of_zero_vector_is_zero(self):
        assert ops.cosine_similarity(np.zeros(8), np.ones(8)) == 0.0

    def test_random_bipolar_vectors_are_quasi_orthogonal(self, rng):
        a = ops.random_bipolar(4096, rng=rng)
        b = ops.random_bipolar(4096, rng=rng)
        assert abs(ops.cosine_similarity(a, b)) < 0.1

    def test_dot_similarity_scales_with_norm(self, rng):
        v = rng.normal(size=32)
        assert ops.dot_similarity(v, 2 * v) == pytest.approx(2 * np.dot(v, v))

    @settings(max_examples=25, deadline=None)
    @given(v=_finite_vectors(32))
    def test_property_cosine_bounded(self, v):
        other = np.roll(v, 3) + 1.0
        sim = ops.cosine_similarity(v, other)
        assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9


class TestHelpers:
    def test_normalize_vector_has_unit_norm(self, rng):
        v = rng.normal(size=40)
        assert np.linalg.norm(ops.normalize_vector(v)) == pytest.approx(1.0)

    def test_normalize_zero_vector_is_unchanged(self):
        np.testing.assert_array_equal(ops.normalize_vector(np.zeros(5)), np.zeros(5))

    def test_permute_is_cyclic(self, rng):
        v = rng.normal(size=10)
        np.testing.assert_allclose(ops.permute(ops.permute(v, 4), 6), v)

    def test_random_unitary_has_unit_magnitude_spectrum(self, rng):
        v = ops.random_unitary(128, rng=rng)
        spectrum = np.abs(np.fft.fft(v / np.sqrt(128)))
        np.testing.assert_allclose(spectrum, np.ones(128), atol=1e-9)

    def test_random_bipolar_values(self, rng):
        v = ops.random_bipolar(256, rng=rng)
        assert set(np.unique(v)) <= {-1.0, 1.0}

    def test_circconv_flops_positive_and_quadratic(self):
        assert ops.circconv_flops(8) == 2 * 64 - 8
        assert ops.circconv_flops(1024) > ops.circconv_flops(512) * 3

    def test_footprint_gemv_vs_streaming(self):
        dim = 1024
        assert ops.circconv_bytes_gemv(dim) > ops.circconv_bytes_streaming(dim) * 100
        # Streaming footprint is linear in d.
        assert ops.circconv_bytes_streaming(dim) == 4 * 3 * dim


def _loop_circular_convolve_direct(a, b):
    """Historical pure-Python O(d^2) loop, kept as the equivalence reference."""
    dim = a.shape[0]
    result = np.zeros(dim)
    for n in range(dim):
        shifted = b[(n - np.arange(dim)) % dim]
        result[n] = float(np.dot(a, shifted))
    return result


def _loop_random_unitary(dim, rng):
    """Historical loop-based conjugate-symmetry construction."""
    half = dim // 2
    phases = rng.uniform(-np.pi, np.pi, size=dim)
    spectrum = np.exp(1j * phases)
    spectrum[0] = 1.0
    if dim % 2 == 0:
        spectrum[half] = np.sign(np.cos(phases[half])) or 1.0
    for k in range(1, (dim + 1) // 2):
        spectrum[dim - k] = np.conj(spectrum[k])
    return np.real(np.fft.ifft(spectrum)) * np.sqrt(dim)


class TestVectorizedEquivalence:
    """The vectorized kernels must reproduce the old loop implementations.

    These assertions are value-based (``allclose``), never timing-based, so
    they stay meaningful on any machine.
    """

    @pytest.mark.parametrize("dim", [1, 2, 3, 8, 17, 64])
    def test_circular_convolve_direct_matches_loop(self, rng, dim):
        a = rng.normal(size=dim)
        b = rng.normal(size=dim)
        np.testing.assert_allclose(
            ops.circular_convolve_direct(a, b),
            _loop_circular_convolve_direct(a, b),
            atol=1e-9,
        )

    @pytest.mark.parametrize("dim", [1, 2, 3, 16, 33, 128])
    def test_random_unitary_matches_loop(self, dim):
        # Identical seeds must give (numerically) identical vectors: the
        # vectorized version draws the same ``dim`` phases so the RNG stream
        # is preserved exactly.
        seed = 1234 + dim
        vectorized = ops.random_unitary(dim, rng=np.random.default_rng(seed))
        reference = _loop_random_unitary(dim, np.random.default_rng(seed))
        np.testing.assert_allclose(vectorized, reference, atol=1e-9)

    def test_random_unitary_stream_position_preserved(self):
        # Downstream code relies on how many draws the constructor consumes;
        # both implementations must leave the generator at the same point.
        rng_new, rng_old = np.random.default_rng(7), np.random.default_rng(7)
        ops.random_unitary(32, rng=rng_new)
        _loop_random_unitary(32, rng_old)
        assert rng_new.integers(1 << 30) == rng_old.integers(1 << 30)
