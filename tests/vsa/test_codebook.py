"""Tests for codebooks, codebook sets and the product codebook."""

import numpy as np
import pytest

from repro.errors import CodebookError, DimensionMismatchError
from repro.vsa import BipolarSpace, Codebook, CodebookSet, ProductCodebook


@pytest.fixture
def space():
    return BipolarSpace(512, seed=11)


@pytest.fixture
def color_codebook(space):
    return Codebook("color", ["red", "green", "blue"], space)


class TestCodebook:
    def test_length_and_membership(self, color_codebook):
        assert len(color_codebook) == 3
        assert "red" in color_codebook
        assert "purple" not in color_codebook

    def test_vector_lookup_by_label_and_index(self, color_codebook):
        np.testing.assert_array_equal(
            color_codebook.vector("green"), color_codebook.vector(1)
        )

    def test_index_of_unknown_label_raises(self, color_codebook):
        with pytest.raises(CodebookError):
            color_codebook.index_of("purple")

    def test_vector_index_out_of_range_raises(self, color_codebook):
        with pytest.raises(CodebookError):
            color_codebook.vector(7)

    def test_cleanup_recovers_stored_label(self, color_codebook):
        label, similarity = color_codebook.cleanup(color_codebook.vector("blue"))
        assert label == "blue"
        assert similarity == pytest.approx(1.0)

    def test_cleanup_recovers_label_under_noise(self, color_codebook, rng):
        noisy = color_codebook.vector("red") + rng.normal(0, 0.5, size=512)
        label, similarity = color_codebook.cleanup(noisy)
        assert label == "red"
        assert similarity > 0.5

    def test_similarities_vector_shape(self, color_codebook):
        sims = color_codebook.similarities(color_codebook.vector("red"))
        assert sims.shape == (3,)
        assert np.argmax(sims) == 0

    def test_duplicate_labels_rejected(self, space):
        with pytest.raises(CodebookError):
            Codebook("color", ["red", "red"], space)

    def test_empty_labels_rejected(self, space):
        with pytest.raises(CodebookError):
            Codebook("color", [], space)

    def test_explicit_vectors_must_match_shape(self, space):
        with pytest.raises(DimensionMismatchError):
            Codebook("color", ["red", "blue"], space, vectors=np.ones((2, 8)))

    def test_nbytes_accounting(self, color_codebook):
        assert color_codebook.nbytes() == 3 * 512 * 4
        assert color_codebook.nbytes(element_bytes=1) == 3 * 512


class TestCodebookSet:
    def test_from_factors_preserves_order(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        assert cbs.factor_names == list(small_factors)
        assert cbs.factor_sizes == [len(v) for v in small_factors.values()]

    def test_num_combinations(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        assert cbs.num_combinations == 5 * 3 * 4

    def test_getitem_by_name_and_index(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        assert cbs["size"] is cbs[1]

    def test_unknown_name_raises(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        with pytest.raises(CodebookError):
            cbs["weight"]

    def test_bind_combination_mapping_and_sequence_agree(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        mapping = {"type": "square", "size": "large", "color": "red"}
        sequence = ["square", "large", "red"]
        np.testing.assert_array_equal(
            cbs.bind_combination(mapping), cbs.bind_combination(sequence)
        )

    def test_bind_combination_missing_factor_raises(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        with pytest.raises(CodebookError):
            cbs.bind_combination({"type": "square"})

    def test_bind_combination_wrong_length_raises(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        with pytest.raises(CodebookError):
            cbs.bind_combination(["square", "large"])

    def test_requires_consistent_dimensions(self, space):
        other = BipolarSpace(128, seed=2)
        with pytest.raises(DimensionMismatchError):
            CodebookSet(
                [Codebook("a", ["x"], space), Codebook("b", ["y"], other)]
            )

    def test_requires_unique_names(self, space):
        with pytest.raises(CodebookError):
            CodebookSet(
                [Codebook("a", ["x"], space), Codebook("a", ["y"], space)]
            )

    def test_empty_set_rejected(self):
        with pytest.raises(CodebookError):
            CodebookSet([])

    def test_footprints(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        assert cbs.nbytes() == (5 + 3 + 4) * 512 * 4
        assert cbs.product_nbytes() == 60 * 512 * 4
        assert cbs.product_nbytes() > cbs.nbytes()


class TestProductCodebook:
    def test_materialises_all_combinations(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        product = ProductCodebook(cbs)
        assert len(product) == cbs.num_combinations
        assert product.vectors.shape == (60, 512)

    def test_lookup_finds_exact_combination(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        product = ProductCodebook(cbs)
        query = cbs.bind_combination({"type": "circle", "size": "small", "color": "black"})
        labels, similarity = product.lookup(query)
        assert labels == ("circle", "small", "black")
        assert similarity == pytest.approx(1.0)

    def test_refuses_combinatorial_explosion(self, space):
        factors = {f"f{i}": [f"v{j}" for j in range(10)] for i in range(6)}
        cbs = CodebookSet.from_factors(factors, space)
        with pytest.raises(CodebookError):
            ProductCodebook(cbs, max_combinations=1000)

    def test_nbytes_matches_analytical_product_footprint(self, small_factors, space):
        cbs = CodebookSet.from_factors(small_factors, space)
        product = ProductCodebook(cbs)
        assert product.nbytes() == cbs.product_nbytes()
