"""Tests for the cleanup (associative item) memory."""

import numpy as np
import pytest

from repro.errors import CodebookError
from repro.vsa import BipolarSpace, CleanupMemory


@pytest.fixture
def space():
    return BipolarSpace(256, seed=5)


@pytest.fixture
def memory(space):
    memory = CleanupMemory(space)
    for label in ["alpha", "beta", "gamma"]:
        memory.store(label, space.random_vector())
    return memory


class TestCleanupMemory:
    def test_length_and_membership(self, memory):
        assert len(memory) == 3
        assert "alpha" in memory
        assert "delta" not in memory

    def test_from_items_constructor(self, space):
        items = {"a": space.random_vector(), "b": space.random_vector()}
        memory = CleanupMemory.from_items(space, items)
        assert memory.labels == ["a", "b"]

    def test_store_overwrites_existing_label(self, memory, space):
        replacement = space.random_vector()
        memory.store("alpha", replacement)
        assert len(memory) == 3
        np.testing.assert_array_equal(memory.vector("alpha"), replacement)

    def test_store_rejects_wrong_shape(self, memory):
        with pytest.raises(CodebookError):
            memory.store("bad", np.ones(7))

    def test_vector_for_unknown_label_raises(self, memory):
        with pytest.raises(CodebookError):
            memory.vector("delta")

    def test_cleanup_recovers_exact_item(self, memory):
        label, similarity = memory.cleanup(memory.vector("beta"))
        assert label == "beta"
        assert similarity == pytest.approx(1.0)

    def test_cleanup_recovers_noisy_item(self, memory, rng):
        noisy = memory.vector("gamma") + rng.normal(0, 0.6, size=256)
        label, _ = memory.cleanup(noisy)
        assert label == "gamma"

    def test_recall_top_k_ordering(self, memory):
        results = memory.recall(memory.vector("alpha"), top_k=3)
        assert [label for label, _ in results][0] == "alpha"
        sims = [similarity for _, similarity in results]
        assert sims == sorted(sims, reverse=True)

    def test_recall_from_empty_memory_raises(self, space):
        with pytest.raises(CodebookError):
            CleanupMemory(space).recall(space.random_vector())

    def test_recall_rejects_bad_top_k(self, memory, space):
        with pytest.raises(CodebookError):
            memory.recall(space.random_vector(), top_k=0)
