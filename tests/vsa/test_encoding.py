"""Tests for scene descriptions and the scene encoder."""

import numpy as np
import pytest

from repro.errors import CodebookError
from repro.vsa import SceneDescription, SceneEncoder


class TestSceneDescription:
    def test_single_constructor(self):
        scene = SceneDescription.single(type="square", size="small", color="red")
        assert scene.num_objects == 1
        assert scene.objects[0]["type"] == "square"

    def test_multi_object_scene(self):
        scene = SceneDescription(objects=({"type": "square"}, {"type": "circle"}))
        assert scene.num_objects == 2


class TestSceneEncoder:
    def test_encode_object_matches_bind_combination(self, bipolar_codebooks):
        encoder = SceneEncoder(bipolar_codebooks)
        attributes = {"type": "square", "size": "large", "color": "red"}
        np.testing.assert_array_equal(
            encoder.encode_object(attributes),
            bipolar_codebooks.bind_combination(attributes),
        )

    def test_encode_scene_single_object(self, bipolar_encoder):
        scene = SceneDescription.single(type="circle", size="small", color="grey")
        vector = bipolar_encoder.encode_scene(scene)
        assert vector.shape == (bipolar_encoder.dim,)

    def test_encode_scene_bundles_multiple_objects(self, bipolar_encoder):
        obj_a = {"type": "circle", "size": "small", "color": "grey"}
        obj_b = {"type": "square", "size": "large", "color": "red"}
        scene = SceneDescription(objects=(obj_a, obj_b))
        bundled = bipolar_encoder.encode_scene(scene)
        space = bipolar_encoder.space
        assert space.similarity(bundled, bipolar_encoder.encode_object(obj_a)) > 0.3
        assert space.similarity(bundled, bipolar_encoder.encode_object(obj_b)) > 0.3

    def test_encode_empty_scene_raises(self, bipolar_encoder):
        with pytest.raises(CodebookError):
            bipolar_encoder.encode_scene(SceneDescription(objects=()))

    def test_encode_with_noise_zero_noise_is_exact(self, hrr_encoder):
        scene = SceneDescription.single(type="circle", size="small", color="grey")
        clean = hrr_encoder.encode_scene(scene)
        np.testing.assert_array_equal(
            hrr_encoder.encode_with_noise(scene, noise_std=0.0), clean
        )

    def test_encode_with_noise_stays_recoverable(self, hrr_encoder, rng):
        scene = SceneDescription.single(type="circle", size="small", color="grey")
        clean = hrr_encoder.encode_scene(scene)
        noisy = hrr_encoder.encode_with_noise(scene, noise_std=0.3, rng=rng)
        assert not np.array_equal(noisy, clean)
        assert hrr_encoder.space.similarity(noisy, clean) > 0.8

    def test_encode_with_negative_noise_raises(self, hrr_encoder):
        scene = SceneDescription.single(type="circle", size="small", color="grey")
        with pytest.raises(CodebookError):
            hrr_encoder.encode_with_noise(scene, noise_std=-0.1)

    def test_accepts_plain_sequence_of_objects(self, bipolar_encoder):
        objs = [{"type": "circle", "size": "small", "color": "grey"}]
        vector = bipolar_encoder.encode_scene(objs)
        assert vector.shape == (bipolar_encoder.dim,)
