"""Tests for the hypervector spaces (bipolar, HRR, binary sparse block)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.vsa import (
    BinarySparseBlockSpace,
    BipolarSpace,
    HRRSpace,
    make_space,
)

ALL_SPACES = [
    lambda: BipolarSpace(512, seed=3),
    lambda: HRRSpace(512, seed=3),
    lambda: BinarySparseBlockSpace(512, num_blocks=32, seed=3),
]


@pytest.fixture(params=ALL_SPACES, ids=["bipolar", "hrr", "block"])
def any_space(request):
    return request.param()


class TestCommonSpaceBehaviour:
    def test_random_vector_has_right_shape(self, any_space):
        assert any_space.random_vector().shape == (any_space.dim,)

    def test_random_vectors_stack(self, any_space):
        assert any_space.random_vectors(5).shape == (5, any_space.dim)

    def test_random_vectors_rejects_nonpositive_count(self, any_space):
        with pytest.raises(DimensionMismatchError):
            any_space.random_vectors(0)

    def test_self_similarity_is_one(self, any_space):
        v = any_space.random_vector()
        assert any_space.similarity(v, v) == pytest.approx(1.0)

    def test_random_vectors_quasi_orthogonal(self, any_space):
        a = any_space.random_vector()
        b = any_space.random_vector()
        assert abs(any_space.similarity(a, b)) < 0.3

    def test_bind_unbind_roundtrip(self, any_space):
        a = any_space.random_vector()
        b = any_space.random_vector()
        bound = any_space.bind(a, b)
        recovered = any_space.cleanup(any_space.unbind(bound, a))
        assert any_space.similarity(recovered, b) > 0.9

    def test_bound_vector_dissimilar_to_inputs(self, any_space):
        a = any_space.random_vector()
        b = any_space.random_vector()
        bound = any_space.bind(a, b)
        assert abs(any_space.similarity(bound, a)) < 0.4
        assert abs(any_space.similarity(bound, b)) < 0.4

    def test_identity_binding_preserves_vector(self, any_space):
        a = any_space.random_vector()
        bound = any_space.bind(a, any_space.identity())
        assert any_space.similarity(any_space.cleanup(bound), a) > 0.99

    def test_bundle_is_similar_to_members(self, any_space):
        members = any_space.random_vectors(3)
        bundled = any_space.bundle(members)
        for member in members:
            assert any_space.similarity(bundled, member) > 0.25

    def test_cleanup_is_idempotent(self, any_space):
        v = any_space.random_vector() + 0.01
        once = any_space.cleanup(v)
        twice = any_space.cleanup(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    def test_bind_all_reduces_left_to_right(self, any_space):
        a, b, c = any_space.random_vectors(3)
        expected = any_space.bind(any_space.bind(a, b), c)
        np.testing.assert_allclose(any_space.bind_all(np.stack([a, b, c])), expected)

    def test_similarity_matrix_shape_and_diagonal(self, any_space):
        vectors = any_space.random_vectors(4)
        matrix = any_space.similarity_matrix(vectors, vectors)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(np.diag(matrix), np.ones(4), atol=1e-9)

    def test_similarity_matrix_dimension_mismatch(self, any_space):
        with pytest.raises(DimensionMismatchError):
            any_space.similarity_matrix(np.ones((2, 8)), np.ones((2, 9)))

    def test_rejects_nonpositive_dimension(self):
        with pytest.raises(DimensionMismatchError):
            BipolarSpace(0)


class TestBipolarSpace:
    def test_vectors_are_bipolar(self):
        space = BipolarSpace(256, seed=0)
        assert set(np.unique(space.random_vector())) <= {-1.0, 1.0}

    def test_binding_is_involutive(self):
        space = BipolarSpace(256, seed=0)
        a, b = space.random_vectors(2)
        np.testing.assert_array_equal(space.unbind(space.bind(a, b), a), b)

    def test_cleanup_breaks_ties_to_plus_one(self):
        space = BipolarSpace(4, seed=0)
        np.testing.assert_array_equal(
            space.cleanup(np.array([0.0, -2.0, 3.0, 0.0])), [1.0, -1.0, 1.0, 1.0]
        )

    def test_shape_mismatch_raises(self):
        space = BipolarSpace(16, seed=0)
        with pytest.raises(DimensionMismatchError):
            space.bind(np.ones(16), np.ones(8))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_bind_preserves_bipolarity(self, seed):
        space = BipolarSpace(64, seed=seed)
        a, b = space.random_vectors(2)
        assert set(np.unique(space.bind(a, b))) <= {-1.0, 1.0}


class TestHRRSpace:
    def test_random_vectors_are_unitary(self):
        space = HRRSpace(128, seed=1)
        v = space.random_vector() / np.sqrt(128)
        np.testing.assert_allclose(np.abs(np.fft.fft(v)), np.ones(128), atol=1e-9)

    def test_exact_unbinding_for_unitary_vectors(self):
        space = HRRSpace(256, seed=1)
        a, b = space.random_vectors(2)
        recovered = space.unbind(space.bind(a, b), a)
        assert space.similarity(recovered, b) > 0.999

    def test_cleanup_projects_to_unitary_manifold(self):
        space = HRRSpace(128, seed=1)
        noisy = space.random_vector() + np.random.default_rng(0).normal(size=128)
        cleaned = space.cleanup(noisy) / np.sqrt(128)
        np.testing.assert_allclose(np.abs(np.fft.fft(cleaned)), np.ones(128), atol=1e-6)

    def test_identity_is_binding_neutral(self):
        space = HRRSpace(64, seed=1)
        a = space.random_vector()
        np.testing.assert_allclose(space.bind(a, space.identity()), a, atol=1e-9)


class TestBinarySparseBlockSpace:
    def test_dimension_must_divide_into_blocks(self):
        with pytest.raises(DimensionMismatchError):
            BinarySparseBlockSpace(100, num_blocks=3)

    def test_random_vector_is_one_hot_per_block(self):
        space = BinarySparseBlockSpace(64, num_blocks=8, seed=2)
        blocks = space.random_vector().reshape(8, 8)
        np.testing.assert_array_equal(blocks.sum(axis=1), np.ones(8))
        assert set(np.unique(blocks)) <= {0.0, 1.0}

    def test_binding_shifts_block_indices(self):
        space = BinarySparseBlockSpace(16, num_blocks=2, seed=2)
        a = np.zeros(16)
        b = np.zeros(16)
        a[1] = 1.0  # block 0 index 1
        a[8 + 3] = 1.0  # block 1 index 3
        b[2] = 1.0  # block 0 index 2
        b[8 + 7] = 1.0  # block 1 index 7
        bound = space.cleanup(space.bind(a, b))
        blocks = bound.reshape(2, 8)
        assert blocks[0].argmax() == (1 + 2) % 8
        assert blocks[1].argmax() == (3 + 7) % 8

    def test_cleanup_restores_one_hot_structure(self):
        space = BinarySparseBlockSpace(32, num_blocks=4, seed=2)
        noisy = space.random_vector() + 0.3
        cleaned = space.cleanup(noisy).reshape(4, 8)
        np.testing.assert_array_equal(cleaned.sum(axis=1), np.ones(4))


class TestMakeSpace:
    def test_factory_builds_each_kind(self):
        assert isinstance(make_space("bipolar", 64), BipolarSpace)
        assert isinstance(make_space("hrr", 64), HRRSpace)
        assert isinstance(make_space("block", 64, num_blocks=8), BinarySparseBlockSpace)

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(DimensionMismatchError):
            make_space("fourier", 64)

    def test_factory_seeding_is_reproducible(self):
        a = make_space("bipolar", 128, seed=5).random_vector()
        b = make_space("bipolar", 128, seed=5).random_vector()
        np.testing.assert_array_equal(a, b)
