"""Integration tests spanning the full stack.

These tests wire the real components together the way the examples and the
benchmark harness do: task generation -> perception -> factorization ->
abduction for the cognition side, and workload construction -> scheduling ->
accelerator/baseline simulation for the systems side.
"""

import pytest

from repro.evaluation import NeuroSymbolicSolver, SolverConfig
from repro.hardware import CogSysAccelerator, make_device
from repro.tasks import IRavenGenerator, RavenGenerator
from repro.workloads import build_workload


class TestCognitionPipeline:
    def test_vsa_pipeline_beats_chance_under_noise(self):
        batch = RavenGenerator("center", seed=11).generate(6)
        solver = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=0.05,
                use_vsa_factorization=True,
                stochasticity=0.05,
                vector_dim=512,
            )
        )
        accuracy = solver.accuracy(batch)
        assert accuracy > 3.0 / 8.0  # well above the 1-in-8 chance level

    def test_pmf_pipeline_on_grid_constellation(self):
        batch = IRavenGenerator("2x2_grid", seed=12).generate(6)
        accuracy = NeuroSymbolicSolver(SolverConfig(perception_error=0.03)).accuracy(batch)
        assert accuracy >= 0.5


class TestSystemsPipeline:
    @pytest.fixture(scope="class")
    def nvsa(self):
        return build_workload("nvsa")

    def test_cogsys_outperforms_every_baseline(self, nvsa):
        cogsys_seconds = CogSysAccelerator().simulate(nvsa, "adaptive").total_seconds
        for device_name in ("rtx2080ti", "xeon", "xavier_nx", "jetson_tx2", "tpu_like"):
            baseline_seconds = make_device(device_name).workload_time(nvsa).total_seconds
            assert baseline_seconds > cogsys_seconds

    def test_cogsys_removes_the_symbolic_bottleneck(self, nvsa):
        gpu_report = make_device("rtx2080ti").workload_time(nvsa)
        cogsys_report = CogSysAccelerator().simulate(nvsa, "sequential")
        assert gpu_report.symbolic_fraction > cogsys_report.symbolic_fraction

    def test_energy_advantage_is_orders_of_magnitude(self, nvsa):
        cogsys = CogSysAccelerator().simulate(nvsa, "adaptive")
        gpu = make_device("rtx2080ti").workload_time(nvsa)
        assert gpu.energy_joules > 100 * cogsys.energy_joules

    def test_all_four_workloads_simulate_under_both_schedulers(self):
        accelerator = CogSysAccelerator()
        for name in ("nvsa", "mimonet", "lvrf", "prae"):
            workload = build_workload(name)
            for scheduler in ("sequential", "adaptive"):
                report = accelerator.simulate(workload, scheduler)
                assert report.total_seconds > 0
