"""Regression: the shared symbolic_fraction mixin on every report type."""

import pytest

from repro.backends import ExecutionReport, SymbolicFractionMixin
from repro.hardware.accelerator import CogSysReport
from repro.hardware.baselines import DeviceReport


def _device_report(neural, symbolic):
    return DeviceReport(
        device="gpu",
        workload="nvsa",
        total_seconds=neural + symbolic,
        neural_seconds=neural,
        symbolic_seconds=symbolic,
    )


def _cogsys_report(neural, symbolic, total):
    return CogSysReport(
        workload="nvsa",
        scheduler="adaptive",
        total_cycles=100,
        total_seconds=total,
        neural_seconds=neural,
        symbolic_seconds=symbolic,
        energy_joules=0.0,
        array_occupancy=0.5,
    )


def _execution_report(neural, symbolic):
    return ExecutionReport(
        backend="cogsys",
        workload="nvsa",
        total_seconds=neural + symbolic,
        neural_seconds=neural,
        symbolic_seconds=symbolic,
    )


class TestSharedMixin:
    def test_all_report_types_share_the_mixin(self):
        for report in (
            _device_report(1.0, 3.0),
            _cogsys_report(1.0, 3.0, total=3.5),
            _execution_report(1.0, 3.0),
        ):
            assert isinstance(report, SymbolicFractionMixin)
            assert report.symbolic_fraction == pytest.approx(0.75)

    def test_device_report_matches_historical_definition(self):
        # Sequential devices: total == neural + symbolic, so the stage-summed
        # mixin reproduces the old symbolic/total formula exactly.
        report = _device_report(2.0, 6.0)
        assert report.symbolic_fraction == report.symbolic_seconds / report.total_seconds

    def test_cogsys_report_uses_stage_sum_not_overlapped_total(self):
        # The adaptive scheduler overlaps stages (total < neural + symbolic);
        # the fraction must keep using the stage sum.
        report = _cogsys_report(1.0, 3.0, total=2.5)
        assert report.symbolic_fraction == pytest.approx(0.75)
        assert report.symbolic_fraction != report.symbolic_seconds / report.total_seconds

    def test_zero_runtime_reports_zero_fraction(self):
        assert _device_report(0.0, 0.0).symbolic_fraction == 0.0
        assert _execution_report(0.0, 0.0).symbolic_fraction == 0.0


class TestExecutionReportCompat:
    def test_device_alias_points_at_backend(self):
        report = _execution_report(1.0, 1.0)
        assert report.device == report.backend == "cogsys"

    def test_cycle_fields_default_to_none_for_device_backends(self):
        report = _execution_report(1.0, 1.0)
        assert report.total_cycles is None
        assert report.array_occupancy is None
        assert report.schedule is None
