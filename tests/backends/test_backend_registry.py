"""Tests for the backend registry: resolution, errors, determinism."""

import pytest

from repro.backends import (
    Backend,
    CustomSpec,
    backend_info,
    backend_names,
    describe_backends,
    get_backend,
    is_symbolic_friendly,
    register_backend,
)
from repro.backends.cogsys import CogSysBackend
from repro.backends.devices import DeviceBackend
from repro.backends.registry import _registry
from repro.errors import BackendError, HardwareConfigError, ReproError
from repro.hardware import make_device
from repro.hardware.baselines import ACCELERATOR_SPECS, DEVICE_SPECS, DeviceModel
from repro.hardware.config import CogSysConfig


class TestResolution:
    def test_every_registered_name_builds_a_backend(self):
        for name in backend_names():
            backend = get_backend(name)
            assert isinstance(backend, Backend)
            assert backend.name == name
            assert backend.power_watts > 0

    def test_registry_covers_all_device_and_accelerator_specs(self):
        names = set(backend_names())
        assert names >= set(DEVICE_SPECS)
        assert names >= set(ACCELERATOR_SPECS)
        assert {"cogsys", "cogsys_no_scaleout", "cogsys_no_nspe"} <= names

    def test_families_match_model_kind(self):
        assert get_backend("a100").family == "device"
        assert get_backend("tpu_like").family == "ml_accelerator"
        assert get_backend("cogsys").family == "cogsys"

    def test_symbolic_friendliness_requires_nspe_mode(self):
        assert is_symbolic_friendly("cogsys")
        assert is_symbolic_friendly("cogsys_no_scaleout")
        assert not is_symbolic_friendly("cogsys_no_nspe")
        assert not is_symbolic_friendly("a100")


class TestErrorPaths:
    def test_unknown_backend_raises_typed_error_not_keyerror(self):
        with pytest.raises(BackendError, match="unknown backend 'tpu_v5'"):
            get_backend("tpu_v5")
        with pytest.raises(ReproError):
            get_backend("tpu_v5")
        try:
            get_backend("tpu_v5")
        except KeyError:  # pragma: no cover - the bug this test guards against
            pytest.fail("unknown backend leaked a KeyError")
        except BackendError:
            pass

    def test_backend_info_unknown_name_lists_known_backends(self):
        with pytest.raises(BackendError, match="known backends"):
            backend_info("nope")

    def test_non_string_non_spec_rejected(self):
        with pytest.raises(BackendError, match="name or CustomSpec"):
            get_backend(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend("cogsys", lambda: CogSysBackend())

    def test_unknown_scheduler_rejected(self):
        from repro.workloads import build_workload

        with pytest.raises(BackendError, match="no scheduler"):
            get_backend("a100").execute(build_workload("nvsa"), scheduler="adaptive")


class TestDeterminism:
    def test_listing_is_sorted_and_stable(self):
        names = backend_names()
        assert list(names) == sorted(names)
        assert backend_names() == names

    def test_describe_backends_rows_sorted_by_name(self):
        rows = describe_backends()
        assert [row["name"] for row in rows] == list(backend_names())
        for row in rows:
            assert {"name", "family", "symbolic_friendly", "power_watts",
                    "schedulers", "description"} <= set(row)


class TestMakeDeviceShim:
    def test_warns_and_delegates_to_the_registry(self):
        with pytest.warns(DeprecationWarning, match="get_backend"):
            device = make_device("xavier_nx")
        assert isinstance(device, DeviceModel)
        assert device.name == "xavier_nx"
        # Same spec object as the registry-resolved backend.
        backend = get_backend("xavier_nx")
        assert device.spec is backend.model.spec

    def test_unknown_name_still_raises_hardware_config_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(HardwareConfigError):
                make_device("tpu_v5")

    def test_cogsys_names_are_not_device_models(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(BackendError, match="not a baseline device"):
                make_device("cogsys")


class TestCustomSpec:
    def test_cogsys_config_spec_builds_named_backend(self):
        backend = get_backend(
            CustomSpec(name="cogsys_4cell", cogsys_config=CogSysConfig(num_cells=4))
        )
        assert isinstance(backend, CogSysBackend)
        assert backend.name == "cogsys_4cell"
        assert backend.accelerator.config.num_cells == 4

    def test_default_spec_is_full_cogsys(self):
        backend = get_backend(CustomSpec(name="mine"))
        assert isinstance(backend, CogSysBackend)
        assert backend.symbolic_friendly

    def test_device_spec_builds_device_backend(self):
        spec = DEVICE_SPECS["a100"]
        backend = get_backend(CustomSpec(name="my_gpu", device_spec=spec))
        assert isinstance(backend, DeviceBackend)
        assert backend.name == "my_gpu"

    def test_build_applies_the_custom_name_on_every_path(self):
        # build() and get_backend must agree on the name regardless of the
        # spec family, and reports must carry it.
        from repro.workloads import build_workload

        spec = CustomSpec(name="my_gpu", device_spec=DEVICE_SPECS["a100"])
        assert spec.build().name == "my_gpu"
        assert get_backend(spec).name == "my_gpu"
        report = get_backend(spec).execute(build_workload("nvsa"))
        assert report.backend == "my_gpu"

    def test_accelerator_spec_builds_systolic_backend(self):
        spec = ACCELERATOR_SPECS["tpu_like"]
        backend = get_backend(CustomSpec(name="my_tpu", accelerator_spec=spec))
        assert backend.family == "ml_accelerator"

    def test_ablation_flags_rejected_on_non_cogsys_specs(self):
        with pytest.raises(BackendError, match="ablation switches"):
            CustomSpec(
                name="x",
                accelerator_spec=ACCELERATOR_SPECS["tpu_like"],
                scale_out=False,
            ).build()

    def test_conflicting_specs_rejected(self):
        with pytest.raises(BackendError, match="at most one"):
            CustomSpec(
                name="both",
                device_spec=DEVICE_SPECS["a100"],
                accelerator_spec=ACCELERATOR_SPECS["tpu_like"],
            ).build()

    def test_empty_name_rejected(self):
        with pytest.raises(BackendError, match="non-empty name"):
            CustomSpec(name="").build()


class TestRegisterBackend:
    def test_registered_custom_backend_resolves_and_unregisters(self):
        register_backend(
            "test_tiny_cogsys",
            lambda: CogSysBackend(name="test_tiny_cogsys"),
            family="cogsys",
            description="test-only",
            symbolic_friendly=True,
        )
        try:
            assert "test_tiny_cogsys" in backend_names()
            assert get_backend("test_tiny_cogsys").name == "test_tiny_cogsys"
            assert is_symbolic_friendly("test_tiny_cogsys")
        finally:
            _registry().pop("test_tiny_cogsys", None)

    def test_omitted_symbolic_friendly_is_probed_from_the_factory(self):
        # Routing reads registry metadata; when the kwarg is omitted it must
        # agree with the backend's own property instead of defaulting False.
        register_backend(
            "test_probed_cogsys",
            lambda: CogSysBackend(name="test_probed_cogsys"),
            family="cogsys",
        )
        try:
            assert is_symbolic_friendly("test_probed_cogsys")
            listing = {row["name"]: row for row in describe_backends()}
            assert listing["test_probed_cogsys"]["symbolic_friendly"] is True
        finally:
            _registry().pop("test_probed_cogsys", None)
