"""Acceptance: the unified protocol reproduces the legacy paths exactly.

``get_backend(name).execute(w)`` must return *identical* ``total_seconds``
to what the pre-refactor interfaces produced for every registered backend
on the NVSA smoke workload — the device shims and the CogSys cycle model
now delegate to the backend layer, so any drift here means the refactor
changed physics.
"""

import warnings

import pytest

from repro.backends import backend_names, get_backend
from repro.hardware import CogSysAccelerator, make_device
from repro.hardware.baselines import ACCELERATOR_SPECS, DEVICE_SPECS
from repro.workloads import build_workload

#: registry name -> constructor of the legacy CogSys configuration
COGSYS_LEGACY = {
    "cogsys": lambda: CogSysAccelerator(),
    "cogsys_no_scaleout": lambda: CogSysAccelerator(scale_out=False),
    "cogsys_no_nspe": lambda: CogSysAccelerator(
        scale_out=False, reconfigurable_symbolic=False
    ),
}


@pytest.fixture(scope="module")
def nvsa():
    return build_workload("nvsa")


def test_every_registered_backend_is_covered():
    assert set(backend_names()) == (
        set(DEVICE_SPECS) | set(ACCELERATOR_SPECS) | set(COGSYS_LEGACY)
    )


@pytest.mark.parametrize("name", sorted(DEVICE_SPECS) + sorted(ACCELERATOR_SPECS))
def test_device_backends_match_legacy_workload_time(name, nvsa):
    backend_report = get_backend(name).execute(nvsa)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = make_device(name).workload_time(nvsa)
    assert backend_report.total_seconds == legacy.total_seconds
    assert backend_report.neural_seconds == legacy.neural_seconds
    assert backend_report.symbolic_seconds == legacy.symbolic_seconds
    assert backend_report.kernel_seconds == legacy.kernel_seconds
    assert backend_report.energy_joules == legacy.energy_joules
    assert backend_report.symbolic_fraction == legacy.symbolic_fraction


@pytest.mark.parametrize("name", sorted(COGSYS_LEGACY))
@pytest.mark.parametrize("scheduler", ["adaptive", "sequential"])
def test_cogsys_backends_match_legacy_simulate(name, scheduler, nvsa):
    backend_report = get_backend(name).execute(nvsa, scheduler=scheduler)
    legacy = COGSYS_LEGACY[name]().simulate(nvsa, scheduler=scheduler)
    assert backend_report.total_seconds == legacy.total_seconds
    assert backend_report.total_cycles == legacy.total_cycles
    assert backend_report.neural_seconds == legacy.neural_seconds
    assert backend_report.symbolic_seconds == legacy.symbolic_seconds
    assert backend_report.energy_joules == legacy.energy_joules
    assert backend_report.array_occupancy == legacy.array_occupancy
    assert backend_report.symbolic_fraction == legacy.symbolic_fraction


class TestGoldenReferences:
    """Pinned pre-refactor values for the NVSA smoke workload.

    The legacy entry points now delegate to the backend layer, so
    legacy-vs-backend comparisons alone cannot catch a timing-math change
    that moves both sides in lockstep; these constants were captured from
    the pre-refactor code and anchor the acceptance criterion.
    """

    def test_cogsys_adaptive_matches_pre_refactor_simulation(self, nvsa):
        report = get_backend("cogsys").execute(nvsa, scheduler="adaptive")
        assert report.total_cycles == 563002
        assert report.total_seconds == pytest.approx(7.037525e-4, rel=1e-9)

    def test_device_backends_match_pre_refactor_timings(self, nvsa):
        assert get_backend("a100").execute(nvsa).total_seconds == pytest.approx(
            3.077399232039885e-3, rel=1e-9
        )
        assert get_backend("tpu_like").execute(nvsa).total_seconds == pytest.approx(
            5.1459e-3, rel=1e-9
        )


def test_batched_reports_match_single_executions():
    backend = get_backend("cogsys")
    reports = backend.batched("nvsa", (1, 2))
    for size, report in zip((1, 2), reports):
        direct = backend.execute(build_workload("nvsa", num_tasks=size))
        assert report.total_seconds == direct.total_seconds
