"""Tests for the shared per-(workload, batch) execution cache."""

import pytest

from repro.backends import ExecutionCache, get_backend
from repro.backends import cache as cache_module
from repro.errors import BackendError


class TestMemoization:
    def test_reports_are_built_once_per_key(self, monkeypatch):
        calls = []
        real_build = cache_module.build_workload
        monkeypatch.setattr(
            cache_module,
            "build_workload",
            lambda name, **kwargs: calls.append(name) or real_build(name, **kwargs),
        )
        cache = ExecutionCache("cogsys")
        first = cache.report("mimonet", 2)
        second = cache.report("mimonet", 2)
        assert first is second
        assert calls == ["mimonet"]
        assert cache.cached_reports == 1
        cache.report("mimonet", 3)
        assert calls == ["mimonet", "mimonet"]
        assert cache.cached_reports == 2

    def test_accepts_backend_instances_and_names(self):
        by_name = ExecutionCache("a100")
        by_instance = ExecutionCache(get_backend("a100"))
        assert by_name.backend_name == by_instance.backend_name == "a100"
        assert by_name.service_seconds("nvsa", 1) == by_instance.service_seconds(
            "nvsa", 1
        )

    def test_matches_direct_backend_execution(self):
        cache = ExecutionCache("tpu_like")
        from repro.workloads import build_workload

        direct = get_backend("tpu_like").execute(build_workload("nvsa", num_tasks=2))
        assert cache.service_seconds("nvsa", 2) == direct.total_seconds
        assert cache.energy_joules("nvsa", 2) == direct.energy_joules


class TestSchedulerResolution:
    def test_defaults_to_backend_default_scheduler(self):
        assert ExecutionCache("cogsys").scheduler == "adaptive"
        assert ExecutionCache("a100").scheduler == "sequential"

    def test_explicit_scheduler_is_kept(self):
        cache = ExecutionCache("cogsys", scheduler="sequential")
        assert cache.scheduler == "sequential"
        assert cache.report("nvsa", 1).scheduler == "sequential"


class TestErrors:
    def test_invalid_batch_size_rejected(self):
        with pytest.raises(BackendError, match="positive"):
            ExecutionCache("cogsys").report("nvsa", 0)

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            ExecutionCache("warp_drive")
