"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed,
so ``pytest tests/`` and ``pytest benchmarks/`` work out of the box in
offline environments.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
