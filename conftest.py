"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed,
so ``pytest tests/`` and ``pytest benchmarks/`` work out of the box in
offline environments.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    """Register repo-local markers (``-m "not slow"`` skips the big ones)."""
    config.addinivalue_line(
        "markers",
        "slow: scale acceptance tests (e.g. the million-request trace replay)",
    )
